"""Consistent-hash ring used to place files and metadata on servers.

§4.3: "files and metadata are spread across ThemisIO servers using a
consistent hash function". The ring hashes each server name to
``vnodes`` positions on a 64-bit circle; a key maps to the first server
clockwise of its hash. ``lookup_n`` walks further clockwise to collect
the *distinct* servers used for striping.
"""

from __future__ import annotations

import bisect
from typing import List, Tuple

from ..errors import FSError
from ..sim.rng import stable_hash

__all__ = ["ConsistentHashRing"]


class ConsistentHashRing:
    """Consistent hashing over named servers with virtual nodes."""

    def __init__(self, servers=(), vnodes: int = 64):
        if vnodes < 1:
            raise FSError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._ring: List[Tuple[int, str]] = []  # sorted (hash, server)
        self._servers: set = set()
        for server in servers:
            self.add_server(server)

    # -------------------------------------------------------------- topology
    def add_server(self, name: str) -> None:
        """Add *name* to the ring (vnodes positions)."""
        if name in self._servers:
            raise FSError(f"server already on ring: {name!r}")
        self._servers.add(name)
        for v in range(self.vnodes):
            h = stable_hash(f"{name}#{v}")
            bisect.insort(self._ring, (h, name))

    def remove_server(self, name: str) -> None:
        """Remove *name* and its vnodes from the ring."""
        if name not in self._servers:
            raise FSError(f"server not on ring: {name!r}")
        self._servers.discard(name)
        self._ring = [(h, s) for h, s in self._ring if s != name]

    @property
    def servers(self) -> List[str]:
        return sorted(self._servers)

    def __len__(self) -> int:
        return len(self._servers)

    # --------------------------------------------------------------- lookups
    def lookup(self, key: str) -> str:
        """The server owning *key*."""
        return self.lookup_n(key, 1)[0]

    def lookup_n(self, key: str, n: int) -> List[str]:
        """The first *n* distinct servers clockwise of *key*'s hash.

        Used for striping: stripe ``i`` of a file lands on the ``i``-th
        entry. If fewer than *n* servers exist, all servers are returned
        (striping degrades gracefully).
        """
        if not self._ring:
            raise FSError("hash ring is empty")
        if n < 1:
            raise FSError("n must be >= 1")
        h = stable_hash(key)
        idx = bisect.bisect_right(self._ring, (h, "￿"))
        found: List[str] = []
        seen = set()
        ring_len = len(self._ring)
        for step in range(ring_len):
            _, server = self._ring[(idx + step) % ring_len]
            if server not in seen:
                seen.add(server)
                found.append(server)
                if len(found) == n or len(found) == len(self._servers):
                    break
        return found
