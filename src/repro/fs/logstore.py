"""Log-structured byte-addressable store (the paper's §7 future work).

"As future work, we are investigating various log-structure
byte-addressable file system designs and persistent data structure
strategy to enable fault tolerance in ThemisIO."

This module implements that design point: an append-only, segmented log
holding chunk-sized data records keyed by ``(ino, chunk_index)``. The
key properties fault tolerance needs:

- **append-only writes** — a record is immutable once written; an
  overwrite appends a new version and obsoletes the old one;
- **monotonic sequence numbers** — total order across segments, so a
  scan can always decide which version of a key is newest;
- **crash consistency** — the in-memory index is volatile; after a
  crash :meth:`recover` rebuilds it by scanning sealed segments and the
  open head segment in order. Everything appended before the crash is
  durable; nothing else is;
- **garbage collection** — sealed segments whose live fraction drops
  below a threshold are cleaned by copying live records to the head.

The store is byte-accurate (records carry real bytes) and used by the
file system's ``backend="log"`` mode; see :mod:`repro.fs.filesystem`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import FSError, InvalidArgument, NoSpace

__all__ = ["LogStructuredStore", "LogRecord", "Segment", "RecoveryReport"]

#: fixed per-record header: key, sequence, length, checksum.
HEADER_BYTES = 32


@dataclass(frozen=True)
class LogRecord:
    """One durable record in a segment."""

    key: Hashable
    seq: int
    data: Optional[bytes]  # None marks a tombstone (delete)

    @property
    def size(self) -> int:
        return HEADER_BYTES + (len(self.data) if self.data is not None else 0)

    @property
    def is_tombstone(self) -> bool:
        return self.data is None


@dataclass
class Segment:
    """A fixed-capacity append region of the log."""

    seg_id: int
    capacity: int
    records: List[LogRecord] = field(default_factory=list)
    written: int = 0
    sealed: bool = False

    def fits(self, record: LogRecord) -> bool:
        """True if *record* fits in the remaining capacity."""
        return self.written + record.size <= self.capacity

    def append(self, record: LogRecord) -> None:
        """Append *record* (segment must be open and have room)."""
        if self.sealed:
            raise FSError(f"append to sealed segment {self.seg_id}")
        if not self.fits(record):
            raise FSError(f"segment {self.seg_id} overflow")
        self.records.append(record)
        self.written += record.size


@dataclass
class RecoveryReport:
    """What a post-crash scan found."""

    segments_scanned: int
    records_scanned: int
    live_keys: int
    tombstones: int


class LogStructuredStore:
    """Append-only segmented log with an in-memory key index."""

    def __init__(self, capacity: int, segment_size: int = 1 << 20,
                 gc_live_threshold: float = 0.5):
        if capacity <= 0 or segment_size <= 0:
            raise FSError("capacity and segment_size must be positive")
        if segment_size > capacity:
            raise FSError("segment_size exceeds capacity")
        if not 0.0 <= gc_live_threshold <= 1.0:
            raise FSError("gc_live_threshold must be in [0, 1]")
        self.capacity = int(capacity)
        self.segment_size = int(segment_size)
        self.gc_live_threshold = float(gc_live_threshold)
        self.max_segments = self.capacity // self.segment_size
        if self.max_segments < 2:
            raise FSError("need room for at least two segments")
        self._seq = itertools.count(1)
        self._seg_ids = itertools.count(0)
        self.segments: List[Segment] = []
        self._head: Optional[Segment] = None
        # Volatile state (lost on crash, rebuilt by recover()):
        self._index: Dict[Hashable, Tuple[int, LogRecord]] = {}
        self._live_bytes: Dict[int, int] = {}  # seg_id -> live record bytes
        self.gc_runs = 0
        self.gc_copied_bytes = 0

    # -------------------------------------------------------------- geometry
    @property
    def segment_count(self) -> int:
        return len(self.segments) + (1 if self._head is not None else 0)

    @property
    def used_bytes(self) -> int:
        total = sum(seg.written for seg in self.segments)
        if self._head is not None:
            total += self._head.written
        return total

    @property
    def live_bytes(self) -> int:
        return sum(self._live_bytes.values())

    def utilization(self) -> float:
        """Live bytes as a fraction of written bytes (1.0 when empty)."""
        used = self.used_bytes
        return (self.live_bytes / used) if used else 1.0

    # ------------------------------------------------------------------- I/O
    def write(self, key: Hashable, data: bytes) -> None:
        """Append a new version of *key*."""
        if not isinstance(data, (bytes, bytearray)):
            raise InvalidArgument(f"data must be bytes: {type(data)}")
        self._append(LogRecord(key=key, seq=next(self._seq), data=bytes(data)))

    def read(self, key: Hashable) -> Optional[bytes]:
        """The newest version of *key*, or None if absent/deleted."""
        entry = self._index.get(key)
        if entry is None:
            return None
        return entry[1].data

    def delete(self, key: Hashable) -> bool:
        """Append a tombstone; True if the key existed."""
        existed = key in self._index
        if existed:
            self._append(LogRecord(key=key, seq=next(self._seq), data=None))
        return existed

    def keys(self):
        """The set of live (non-deleted) keys."""
        return set(self._index)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._index

    # -------------------------------------------------------------- internal
    def _append(self, record: LogRecord) -> None:
        head = self._head
        if head is None or not head.fits(record):
            if head is not None:
                head.sealed = True
                self.segments.append(head)
            if len(self.segments) + 1 > self.max_segments:
                self.gc()
                if len(self.segments) + 1 > self.max_segments:
                    raise NoSpace("log full even after garbage collection")
            head = self._head = Segment(seg_id=next(self._seg_ids),
                                        capacity=self.segment_size)
        if record.size > self.segment_size:
            raise InvalidArgument(
                f"record of {record.size} bytes exceeds segment size "
                f"{self.segment_size}")
        head.append(record)
        self._account(head.seg_id, record)

    def _account(self, seg_id: int, record: LogRecord) -> None:
        """Index the new version; de-account the one it replaces."""
        old = self._index.get(record.key)
        if old is not None:
            old_seg, old_rec = old
            self._live_bytes[old_seg] = (
                self._live_bytes.get(old_seg, 0) - old_rec.size)
        if record.is_tombstone:
            self._index.pop(record.key, None)
        else:
            self._index[record.key] = (seg_id, record)
            self._live_bytes[seg_id] = (
                self._live_bytes.get(seg_id, 0) + record.size)

    # ---------------------------------------------------------------- GC
    def gc(self) -> int:
        """Clean sealed segments below the live threshold; returns bytes
        reclaimed. Live records are re-appended at the head."""
        self.gc_runs += 1
        victims = [seg for seg in self.segments
                   if (self._live_bytes.get(seg.seg_id, 0) / seg.capacity)
                   < self.gc_live_threshold]
        if not victims:
            return 0
        reclaimed = 0
        victim_ids = {seg.seg_id for seg in victims}
        self.segments = [seg for seg in self.segments
                         if seg.seg_id not in victim_ids]
        for seg in victims:
            reclaimed += seg.written
            for record in seg.records:
                current = self._index.get(record.key)
                if (current is not None and current[0] == seg.seg_id
                        and current[1].seq == record.seq):
                    # Still the live version: rewrite at the head.
                    self.gc_copied_bytes += record.size
                    self._append(LogRecord(key=record.key,
                                           seq=next(self._seq),
                                           data=record.data))
            self._live_bytes.pop(seg.seg_id, None)
        return reclaimed

    # ---------------------------------------------------------- fault model
    def crash(self) -> None:
        """Lose all volatile state (the index and accounting)."""
        self._index = {}
        self._live_bytes = {}

    def recover(self) -> RecoveryReport:
        """Rebuild the index by scanning segments in append order."""
        self._index = {}
        self._live_bytes = {}
        ordered = sorted(self.segments, key=lambda seg: seg.seg_id)
        if self._head is not None:
            ordered.append(self._head)
        scanned = 0
        tombstones = 0
        # Replay in sequence order; the newest record per key wins.
        for seg in ordered:
            for record in seg.records:
                scanned += 1
                if record.is_tombstone:
                    tombstones += 1
                current = self._index.get(record.key)
                if current is None or record.seq > current[1].seq:
                    if record.is_tombstone:
                        self._index.pop(record.key, None)
                        # Remember tombstone ordering via a sentinel so an
                        # older data record cannot resurrect the key.
                        self._index[record.key] = (seg.seg_id, record)
                    else:
                        self._index[record.key] = (seg.seg_id, record)
        # Drop tombstone sentinels and rebuild live accounting.
        for key in [k for k, (_s, rec) in self._index.items()
                    if rec.is_tombstone]:
            del self._index[key]
        for seg_id, record in self._index.values():
            self._live_bytes[seg_id] = (
                self._live_bytes.get(seg_id, 0) + record.size)
        return RecoveryReport(
            segments_scanned=len(ordered),
            records_scanned=scanned,
            live_keys=len(self._index),
            tombstones=tombstones,
        )
