"""Byte-addressable NVMe region with extent allocation.

Models one server's local persistent-memory device (§4.3: "an index
specifies the NVMe region of the file's contents", writes go to "a range
of allocated byte-addressable space in NVMe"). Allocation is first-fit
over a sorted free list with coalescing on free. Extents store real
bytes so the filesystem is verifiable end-to-end; unwritten bytes read
back as zeros.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import FSError, InvalidArgument, NoSpace

__all__ = ["Extent", "NVMeRegion"]


@dataclass(frozen=True)
class Extent:
    """A contiguous allocated byte range on a device."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "Extent") -> bool:
        """True if this extent shares any byte with *other*."""
        return self.offset < other.end and other.offset < self.end


class NVMeRegion:
    """One byte-addressable storage device.

    Parameters
    ----------
    capacity:
        Device size in bytes.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise FSError(f"capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._free: List[Tuple[int, int]] = [(0, self.capacity)]  # (offset, len)
        self._allocated: Dict[int, Extent] = {}  # offset -> extent
        self._data: Dict[int, bytearray] = {}  # extent offset -> content

    # ------------------------------------------------------------ accounting
    @property
    def used_bytes(self) -> int:
        return sum(e.length for e in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def extent_count(self) -> int:
        return len(self._allocated)

    def extents(self) -> List[Extent]:
        """All allocated extents, ordered by device offset."""
        return sorted(self._allocated.values(), key=lambda e: e.offset)

    # ------------------------------------------------------------ allocation
    def alloc(self, nbytes: int) -> Extent:
        """Allocate a contiguous extent of *nbytes* (first fit)."""
        if nbytes <= 0:
            raise InvalidArgument(f"allocation must be positive: {nbytes}")
        for i, (off, length) in enumerate(self._free):
            if length >= nbytes:
                extent = Extent(off, nbytes)
                if length == nbytes:
                    del self._free[i]
                else:
                    self._free[i] = (off + nbytes, length - nbytes)
                self._allocated[extent.offset] = extent
                self._data[extent.offset] = bytearray(nbytes)
                return extent
        raise NoSpace(
            f"cannot allocate {nbytes} bytes ({self.free_bytes} free, fragmented)")

    def free(self, extent: Extent) -> None:
        """Release *extent* and coalesce adjacent free ranges."""
        if self._allocated.get(extent.offset) != extent:
            raise FSError(f"freeing unallocated extent: {extent}")
        del self._allocated[extent.offset]
        del self._data[extent.offset]
        self._free.append((extent.offset, extent.length))
        self._free.sort()
        merged: List[Tuple[int, int]] = []
        for off, length in self._free:
            if merged and merged[-1][0] + merged[-1][1] == off:
                merged[-1] = (merged[-1][0], merged[-1][1] + length)
            else:
                merged.append((off, length))
        self._free = merged

    # ------------------------------------------------------------------- I/O
    def write(self, extent: Extent, offset: int, data: bytes) -> None:
        """Write *data* at *offset* within *extent*."""
        self._check(extent, offset, len(data))
        buf = self._data[extent.offset]
        buf[offset:offset + len(data)] = data

    def read(self, extent: Extent, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset* within *extent*."""
        self._check(extent, offset, length)
        buf = self._data[extent.offset]
        return bytes(buf[offset:offset + length])

    def _check(self, extent: Extent, offset: int, length: int) -> None:
        if self._allocated.get(extent.offset) != extent:
            raise FSError(f"I/O on unallocated extent: {extent}")
        if offset < 0 or length < 0 or offset + length > extent.length:
            raise InvalidArgument(
                f"I/O range [{offset}, {offset + length}) outside extent "
                f"of length {extent.length}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<NVMeRegion {self.used_bytes}/{self.capacity} used, "
                f"{self.extent_count} extents>")
