"""Byte-addressable NVMe region with extent allocation.

Models one server's local persistent-memory device (§4.3: "an index
specifies the NVMe region of the file's contents", writes go to "a range
of allocated byte-addressable space in NVMe"). Allocation is best-fit
over a size-bucketed free index — the smallest free run that fits, the
lowest-offset such run on ties — with O(1) neighbour coalescing on free
via offset/end maps (the original first-fit list re-sorted and re-merged
the whole free list on every ``free``). Extents store real bytes so the
filesystem is verifiable end-to-end; unwritten bytes read back as zeros.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import FSError, InvalidArgument, NoSpace

__all__ = ["Extent", "NVMeRegion"]


@dataclass(frozen=True)
class Extent:
    """A contiguous allocated byte range on a device."""

    offset: int
    length: int

    @property
    def end(self) -> int:
        return self.offset + self.length

    def overlaps(self, other: "Extent") -> bool:
        """True if this extent shares any byte with *other*."""
        return self.offset < other.end and other.offset < self.end


class NVMeRegion:
    """One byte-addressable storage device.

    Parameters
    ----------
    capacity:
        Device size in bytes.
    """

    __slots__ = ("capacity", "_free_by_offset", "_free_by_end", "_buckets",
                 "_sizes", "_allocated", "_data")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise FSError(f"capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        # Free-space index: every free run appears in all three views.
        self._free_by_offset: Dict[int, int] = {}  # offset -> length
        self._free_by_end: Dict[int, int] = {}     # offset+length -> offset
        self._buckets: Dict[int, List[int]] = {}   # length -> sorted offsets
        self._sizes: List[int] = []                # sorted distinct lengths
        self._insert_run(0, self.capacity)
        self._allocated: Dict[int, Extent] = {}  # offset -> extent
        self._data: Dict[int, bytearray] = {}  # extent offset -> content

    # ------------------------------------------------------- free-space index
    def _insert_run(self, offset: int, length: int) -> None:
        self._free_by_offset[offset] = length
        self._free_by_end[offset + length] = offset
        bucket = self._buckets.get(length)
        if bucket is None:
            self._buckets[length] = [offset]
            insort(self._sizes, length)
        else:
            insort(bucket, offset)

    def _remove_run(self, offset: int, length: int) -> None:
        del self._free_by_offset[offset]
        del self._free_by_end[offset + length]
        bucket = self._buckets[length]
        if len(bucket) == 1:
            del self._buckets[length]
            del self._sizes[bisect_left(self._sizes, length)]
        else:
            del bucket[bisect_left(bucket, offset)]

    @property
    def _free(self) -> List[Tuple[int, int]]:
        """The free list as sorted ``(offset, length)`` pairs (debugging
        and introspection; the live index is the bucketed maps)."""
        return sorted(self._free_by_offset.items())

    # ------------------------------------------------------------ accounting
    @property
    def used_bytes(self) -> int:
        return sum(e.length for e in self._allocated.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    @property
    def extent_count(self) -> int:
        return len(self._allocated)

    def extents(self) -> List[Extent]:
        """All allocated extents, ordered by device offset."""
        return sorted(self._allocated.values(), key=lambda e: e.offset)

    # ------------------------------------------------------------ allocation
    def alloc(self, nbytes: int) -> Extent:
        """Allocate a contiguous extent of *nbytes* (best fit: the
        smallest adequate free run, lowest offset on ties)."""
        if nbytes <= 0:
            raise InvalidArgument(f"allocation must be positive: {nbytes}")
        i = bisect_left(self._sizes, nbytes)
        if i == len(self._sizes):
            raise NoSpace(
                f"cannot allocate {nbytes} bytes "
                f"({self.free_bytes} free, fragmented)")
        length = self._sizes[i]
        off = self._buckets[length][0]
        self._remove_run(off, length)
        if length > nbytes:
            self._insert_run(off + nbytes, length - nbytes)
        extent = Extent(off, nbytes)
        self._allocated[extent.offset] = extent
        self._data[extent.offset] = bytearray(nbytes)
        return extent

    def free(self, extent: Extent) -> None:
        """Release *extent*, coalescing with free neighbours in O(1)
        lookups (the end/offset maps name them directly)."""
        if self._allocated.get(extent.offset) != extent:
            raise FSError(f"freeing unallocated extent: {extent}")
        del self._allocated[extent.offset]
        del self._data[extent.offset]
        start, end = extent.offset, extent.end
        prev_off = self._free_by_end.get(start)
        if prev_off is not None:
            self._remove_run(prev_off, start - prev_off)
            start = prev_off
        next_len = self._free_by_offset.get(end)
        if next_len is not None:
            self._remove_run(end, next_len)
            end += next_len
        self._insert_run(start, end - start)

    # ------------------------------------------------------------------- I/O
    def write(self, extent: Extent, offset: int, data: bytes) -> None:
        """Write *data* at *offset* within *extent*."""
        self._check(extent, offset, len(data))
        buf = self._data[extent.offset]
        buf[offset:offset + len(data)] = data

    def read(self, extent: Extent, offset: int, length: int) -> bytes:
        """Read *length* bytes at *offset* within *extent*."""
        self._check(extent, offset, length)
        buf = self._data[extent.offset]
        return bytes(buf[offset:offset + length])

    def _check(self, extent: Extent, offset: int, length: int) -> None:
        if self._allocated.get(extent.offset) != extent:
            raise FSError(f"I/O on unallocated extent: {extent}")
        if offset < 0 or length < 0 or offset + length > extent.length:
            raise InvalidArgument(
                f"I/O range [{offset}, {offset + length}) outside extent "
                f"of length {extent.length}")

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<NVMeRegion {self.used_bytes}/{self.capacity} used, "
                f"{self.extent_count} extents>")
