"""Systematic k-of-n erasure code over GF(256) (Reed–Solomon, Cauchy).

The durability tier stores each stripe group as ``k`` data shares plus
``m = n - k`` parity shares on ``n`` distinct servers; any ``k``
surviving shares reconstruct the group. Parity rows come from a Cauchy
matrix — ``C[j][i] = 1 / (x_j ^ y_i)`` with ``x_j = k + j`` and
``y_i = i`` — which is MDS for every ``k < n <= 256``, so no per-(k, n)
invertibility checks are needed.

Everything here is pure, allocation-deterministic Python on ``bytes``:
scalar multiplication is a 256-entry ``bytes.translate`` table and GF
addition is word-wide integer XOR, so encode/decode stay fast enough
for the verification paths without touching numpy (the wire path must
stay importable and bit-stable on any host).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..errors import InvalidArgument

__all__ = ["encode", "decode", "reconstruct_share", "max_shares"]

#: GF(256) size limit: share indices are field elements.
max_shares = 256

# --- GF(256) tables (AES polynomial 0x11d), built once at import -------
_EXP = [0] * 512
_LOG = [0] * 256
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= 0x11D
for _i in range(255, 512):
    _EXP[_i] = _EXP[_i - 255]
del _x, _i

#: coefficient -> 256-byte translate table for c * v (built lazily; the
#: working set is tiny — one entry per distinct matrix coefficient).
_MUL_TABLES: Dict[int, bytes] = {}


def _mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def _inv(a: int) -> int:
    if a == 0:
        raise InvalidArgument("GF(256) inverse of zero")
    return _EXP[255 - _LOG[a]]


def _scale(data: bytes, c: int) -> bytes:
    """c * data, element-wise over GF(256)."""
    if c == 0:
        return bytes(len(data))
    if c == 1:
        return data
    table = _MUL_TABLES.get(c)
    if table is None:
        table = bytes(_mul(c, v) for v in range(256))
        _MUL_TABLES[c] = table
    return data.translate(table)


def _xor(a: bytes, b: bytes) -> bytes:
    """a + b over GF(256) (addition is XOR), word-wide via int."""
    return (int.from_bytes(a, "little")
            ^ int.from_bytes(b, "little")).to_bytes(len(a), "little")


def _check_kn(k: int, n: int) -> None:
    if not 1 <= k < n <= max_shares:
        raise InvalidArgument(f"need 1 <= k < n <= {max_shares}: k={k} n={n}")


def _row(k: int, n: int, share_index: int) -> List[int]:
    """Generator-matrix row of one share: identity for data shares
    (``share_index < k``), a Cauchy row for parity shares."""
    if not 0 <= share_index < n:
        raise InvalidArgument(
            f"share index {share_index} outside [0, {n})")
    if share_index < k:
        return [1 if i == share_index else 0 for i in range(k)]
    x = share_index  # k + j for parity row j = share_index - k
    return [_inv(x ^ i) for i in range(k)]


def _combine(row: Sequence[int], shares: Sequence[bytes]) -> bytes:
    out = bytes(len(shares[0]))
    for coeff, share in zip(row, shares):
        if coeff:
            out = _xor(out, _scale(share, coeff))
    return out


def encode(k: int, n: int, data_shares: Sequence[bytes]) -> List[bytes]:
    """The ``n - k`` parity shares of *data_shares* (all equal length)."""
    _check_kn(k, n)
    if len(data_shares) != k:
        raise InvalidArgument(
            f"expected {k} data shares, got {len(data_shares)}")
    length = len(data_shares[0])
    if any(len(s) != length for s in data_shares):
        raise InvalidArgument("data shares must be equal length")
    return [_combine(_row(k, n, k + j), data_shares)
            for j in range(n - k)]


def decode(k: int, n: int, shares: Dict[int, bytes]) -> List[bytes]:
    """The ``k`` data shares, reconstructed from any ``k`` of *shares*.

    *shares* maps share index (``0..n-1``; data below ``k``, parity at
    and above) to share content. Extra shares beyond ``k`` are ignored
    (lowest indices win, so present data shares pass through verbatim).
    """
    _check_kn(k, n)
    if len(shares) < k:
        raise InvalidArgument(
            f"need {k} shares to decode, got {len(shares)}")
    use = sorted(shares)[:k]
    if all(s < k for s in use) and use == list(range(k)):
        return [shares[s] for s in use]
    length = len(shares[use[0]])
    if any(len(shares[s]) != length for s in use):
        raise InvalidArgument("shares must be equal length")
    # Invert the k x k sub-matrix of the rows we hold (Gauss-Jordan over
    # GF(256)); the Cauchy construction guarantees it is non-singular.
    matrix = [_row(k, n, s) for s in use]
    inverse = [[1 if r == c else 0 for c in range(k)] for r in range(k)]
    for col in range(k):
        pivot = next(r for r in range(col, k) if matrix[r][col])
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        inverse[col], inverse[pivot] = inverse[pivot], inverse[col]
        pinv = _inv(matrix[col][col])
        matrix[col] = [_mul(v, pinv) for v in matrix[col]]
        inverse[col] = [_mul(v, pinv) for v in inverse[col]]
        for r in range(k):
            if r == col or not matrix[r][col]:
                continue
            f = matrix[r][col]
            matrix[r] = [a ^ _mul(f, b)
                         for a, b in zip(matrix[r], matrix[col])]
            inverse[r] = [a ^ _mul(f, b)
                          for a, b in zip(inverse[r], inverse[col])]
    held = [shares[s] for s in use]
    return [_combine(inverse[i], held) for i in range(k)]


def reconstruct_share(k: int, n: int, shares: Dict[int, bytes],
                      share_index: int) -> bytes:
    """Content of share *share_index* rebuilt from any ``k`` shares
    (the repair path: one lost share, data or parity)."""
    if share_index in shares:
        return shares[share_index]
    data = decode(k, n, shares)
    if share_index < k:
        return data[share_index]
    return _combine(_row(k, n, share_index), data)
