"""Stripe layout computation.

A file with stripe size ``S`` over servers ``[s0, s1, ...]`` places byte
range ``[k*S, (k+1)*S)`` (chunk ``k``) on server ``servers[k % len]``.
:func:`map_range` splits an arbitrary byte range into per-chunk segments,
which is all both the client (to route requests) and the server (to hit
its local extents) need.

Layouts are pure functions of ``(spec, offset, length)`` and workloads
re-touch the same ranges constantly (a checkpoint loop re-writes one
range per iteration), so both :func:`map_range` and the per-server
aggregation :func:`server_spans` memoise their results on the spec.
Cached results are the exact objects a fresh computation would produce;
callers iterate them read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import InvalidArgument

__all__ = ["StripeSpec", "ChunkSlice", "map_range", "server_spans",
           "set_stripe_memo_enabled", "stripe_memo_enabled"]

#: Process-wide switch for the layout memo (seed-equivalence suite and
#: benchmarking; memoised and recomputed layouts are identical).
_MEMO_ENABLED = True

#: Cap on memoised ranges per stripe spec (per memo kind).
_MEMO_MAX = 4096


def set_stripe_memo_enabled(enabled: bool) -> None:
    """Enable/disable the per-spec stripe-layout memo."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)


def stripe_memo_enabled() -> bool:
    """Whether layout computations are memoised on the spec."""
    return _MEMO_ENABLED


@dataclass(frozen=True)
class StripeSpec:
    """Striping parameters recorded in file metadata (§4.3)."""

    stripe_size: int
    servers: tuple  # server names, stripe order

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise InvalidArgument(f"stripe_size must be positive: {self.stripe_size}")
        if not self.servers:
            raise InvalidArgument("stripe needs at least one server")

    @property
    def stripe_count(self) -> int:
        return len(self.servers)

    def server_of_chunk(self, chunk_index: int) -> str:
        """The server owning chunk *chunk_index* (round-robin)."""
        return self.servers[chunk_index % len(self.servers)]

    def _memo(self, kind: str) -> dict:
        """This spec's layout memo for *kind* (created lazily, attached
        outside the frozen dataclass fields so it never participates in
        equality or hashing)."""
        memo = self.__dict__.get(kind)
        if memo is None:
            memo = {}
            object.__setattr__(self, kind, memo)
        return memo


@dataclass(frozen=True)
class ChunkSlice:
    """One contiguous piece of a file range falling inside a single chunk."""

    chunk_index: int       # global chunk number within the file
    server: str            # owning server
    file_offset: int       # where this slice starts in the file
    chunk_offset: int      # where this slice starts within its chunk
    length: int            # slice length in bytes

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length


def map_range(spec: StripeSpec, offset: int, length: int) -> List[ChunkSlice]:
    """Split file byte range ``[offset, offset+length)`` into chunk slices.

    Slices are returned in file order; adjacent slices on the same server
    are *not* merged (they are distinct chunks on the device). The result
    is memoised on *spec*; treat it as read-only.
    """
    if offset < 0 or length < 0:
        raise InvalidArgument(f"invalid range: offset={offset} length={length}")
    if _MEMO_ENABLED:
        memo = spec._memo("_range_memo")
        cached = memo.get((offset, length))
        if cached is not None:
            return cached
    slices: List[ChunkSlice] = []
    pos = offset
    end = offset + length
    size = spec.stripe_size
    while pos < end:
        chunk = pos // size
        chunk_off = pos - chunk * size
        take = min(end - pos, size - chunk_off)
        slices.append(ChunkSlice(
            chunk_index=chunk,
            server=spec.server_of_chunk(chunk),
            file_offset=pos,
            chunk_offset=chunk_off,
            length=take,
        ))
        pos += take
    if _MEMO_ENABLED:
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[(offset, length)] = slices
    return slices


def server_spans(spec: StripeSpec, offset: int,
                 length: int) -> Dict[str, Tuple[int, int]]:
    """Per-server ``(first_offset, total_bytes)`` of a file byte range.

    The aggregation clients use to split one logical I/O into one
    request per data server. Memoised on *spec*; a fresh dict is
    returned per call (callers may keep or discard it), built from a
    cached aggregate.
    """
    if _MEMO_ENABLED:
        memo = spec._memo("_span_memo")
        cached = memo.get((offset, length))
        if cached is not None:
            return dict(cached)
    spans: Dict[str, Tuple[int, int]] = {}
    for piece in map_range(spec, offset, length):
        first, total = spans.get(piece.server, (piece.file_offset, 0))
        spans[piece.server] = (min(first, piece.file_offset),
                               total + piece.length)
    if _MEMO_ENABLED:
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[(offset, length)] = spans
        return dict(spans)
    return spans
