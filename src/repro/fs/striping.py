"""Stripe layout computation.

A file with stripe size ``S`` over servers ``[s0, s1, ...]`` places byte
range ``[k*S, (k+1)*S)`` (chunk ``k``) on server ``servers[k % len]``.
:func:`map_range` splits an arbitrary byte range into per-chunk segments,
which is all both the client (to route requests) and the server (to hit
its local extents) need.

Layouts are pure functions of ``(spec, offset, length)`` and workloads
re-touch the same ranges constantly (a checkpoint loop re-writes one
range per iteration), so both :func:`map_range` and the per-server
aggregation :func:`server_spans` memoise their results on the spec.
Cached results are the exact objects a fresh computation would produce;
callers iterate them read-only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from ..errors import InvalidArgument

__all__ = ["StripeSpec", "ErasureSpec", "ChunkSlice", "ParitySlice",
           "map_range", "server_spans", "parity_slices", "parity_spans",
           "group_range", "set_stripe_memo_enabled", "stripe_memo_enabled"]

#: Process-wide switch for the layout memo (seed-equivalence suite and
#: benchmarking; memoised and recomputed layouts are identical).
_MEMO_ENABLED = True

#: Cap on memoised ranges per stripe spec (per memo kind).
_MEMO_MAX = 4096


def set_stripe_memo_enabled(enabled: bool) -> None:
    """Enable/disable the per-spec stripe-layout memo."""
    global _MEMO_ENABLED
    _MEMO_ENABLED = bool(enabled)


def stripe_memo_enabled() -> bool:
    """Whether layout computations are memoised on the spec."""
    return _MEMO_ENABLED


@dataclass(frozen=True)
class StripeSpec:
    """Striping parameters recorded in file metadata (§4.3)."""

    stripe_size: int
    servers: tuple  # server names, stripe order

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise InvalidArgument(f"stripe_size must be positive: {self.stripe_size}")
        if not self.servers:
            raise InvalidArgument("stripe needs at least one server")

    @property
    def stripe_count(self) -> int:
        return len(self.servers)

    def server_of_chunk(self, chunk_index: int) -> str:
        """The server owning chunk *chunk_index* (round-robin)."""
        return self.servers[chunk_index % len(self.servers)]

    def _memo(self, kind: str) -> dict:
        """This spec's layout memo for *kind* (created lazily, attached
        outside the frozen dataclass fields so it never participates in
        equality or hashing)."""
        memo = self.__dict__.get(kind)
        if memo is None:
            memo = {}
            object.__setattr__(self, kind, memo)
        return memo


@dataclass(frozen=True)
class ErasureSpec:
    """Erasure-coded layout: ``k`` data + ``n - k`` parity shares per group.

    A *group* is ``k`` consecutive file chunks (``group_bytes`` =
    ``k * stripe_size`` of logical data) plus ``m = n - k`` parity
    shares. Share ``s`` of group ``g`` lives on
    ``servers[(g + s) % n]`` — the rotation spreads parity load evenly
    — so all ``n`` shares of a group land on distinct servers and any
    ``n - k`` simultaneous server losses leave ``k`` decodable shares.

    ``server_of_chunk`` follows the same rotation for data chunks, which
    makes :func:`map_range` / :func:`server_spans` work unchanged for
    both spec kinds (a data chunk *is* a share).
    """

    stripe_size: int
    servers: tuple  # n distinct server names
    k: int          # data shares per group

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise InvalidArgument(
                f"stripe_size must be positive: {self.stripe_size}")
        n = len(self.servers)
        if len(set(self.servers)) != n:
            raise InvalidArgument(
                f"erasure servers must be distinct: {self.servers}")
        if not 1 <= self.k < n:
            raise InvalidArgument(
                f"need 1 <= k < n servers: k={self.k} n={n}")
        if n > 256:
            raise InvalidArgument(f"GF(256) limits n to 256: {n}")

    @property
    def n(self) -> int:
        return len(self.servers)

    @property
    def m(self) -> int:
        """Parity shares per group (the survivable loss count)."""
        return len(self.servers) - self.k

    @property
    def stripe_count(self) -> int:
        return len(self.servers)

    @property
    def group_bytes(self) -> int:
        """Logical data bytes per group."""
        return self.k * self.stripe_size

    def server_of_share(self, group: int, share_index: int) -> str:
        """The server holding share *share_index* of group *group*."""
        return self.servers[(group + share_index) % len(self.servers)]

    def server_of_chunk(self, chunk_index: int) -> str:
        """The server owning data chunk *chunk_index* (share
        ``chunk_index % k`` of group ``chunk_index // k``)."""
        return self.server_of_share(chunk_index // self.k,
                                    chunk_index % self.k)

    def share_of_server(self, group: int, server: str) -> int:
        """The share index *server* holds in *group* (raises if none)."""
        pos = self.servers.index(server)
        return (pos - group) % len(self.servers)

    def parity_chunk_index(self, group: int, share_index: int) -> int:
        """Backend chunk key of a parity share (negative: parity shares
        live outside the file's data chunk index space)."""
        return -(group * self.m + (share_index - self.k) + 1)

    def data_chunk_index(self, group: int, share_index: int) -> int:
        """Backend chunk key of a data share (a plain file chunk)."""
        return group * self.k + share_index

    def chunk_index_of_share(self, group: int, share_index: int) -> int:
        """Backend chunk key of any share of *group*."""
        if share_index < self.k:
            return self.data_chunk_index(group, share_index)
        return self.parity_chunk_index(group, share_index)

    def n_groups(self, size: int) -> int:
        """Groups covering a file of *size* logical bytes."""
        if size <= 0:
            return 0
        return (size + self.group_bytes - 1) // self.group_bytes

    def _memo(self, kind: str) -> dict:
        memo = self.__dict__.get(kind)
        if memo is None:
            memo = {}
            object.__setattr__(self, kind, memo)
        return memo


@dataclass(frozen=True)
class ChunkSlice:
    """One contiguous piece of a file range falling inside a single chunk."""

    chunk_index: int       # global chunk number within the file
    server: str            # owning server
    file_offset: int       # where this slice starts in the file
    chunk_offset: int      # where this slice starts within its chunk
    length: int            # slice length in bytes

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length


#: Either layout kind; both expose stripe_size / server_of_chunk /
#: stripe_count, so the range-splitting functions serve both.
AnySpec = Union[StripeSpec, "ErasureSpec"]


def map_range(spec: AnySpec, offset: int, length: int) -> List[ChunkSlice]:
    """Split file byte range ``[offset, offset+length)`` into chunk slices.

    Slices are returned in file order; adjacent slices on the same server
    are *not* merged (they are distinct chunks on the device). The result
    is memoised on *spec*; treat it as read-only. Works for both
    :class:`StripeSpec` and :class:`ErasureSpec` (data shares only —
    parity placement is :func:`parity_slices`).
    """
    if offset < 0 or length < 0:
        raise InvalidArgument(f"invalid range: offset={offset} length={length}")
    if _MEMO_ENABLED:
        memo = spec._memo("_range_memo")
        cached = memo.get((offset, length))
        if cached is not None:
            return cached
    slices: List[ChunkSlice] = []
    pos = offset
    end = offset + length
    size = spec.stripe_size
    while pos < end:
        chunk = pos // size
        chunk_off = pos - chunk * size
        take = min(end - pos, size - chunk_off)
        slices.append(ChunkSlice(
            chunk_index=chunk,
            server=spec.server_of_chunk(chunk),
            file_offset=pos,
            chunk_offset=chunk_off,
            length=take,
        ))
        pos += take
    if _MEMO_ENABLED:
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[(offset, length)] = slices
    return slices


def server_spans(spec: AnySpec, offset: int,
                 length: int) -> Dict[str, Tuple[int, int]]:
    """Per-server ``(first_offset, total_bytes)`` of a file byte range.

    The aggregation clients use to split one logical I/O into one
    request per data server. Memoised on *spec*; a fresh dict is
    returned per call (callers may keep or discard it), built from a
    cached aggregate.
    """
    if _MEMO_ENABLED:
        memo = spec._memo("_span_memo")
        cached = memo.get((offset, length))
        if cached is not None:
            return dict(cached)
    spans: Dict[str, Tuple[int, int]] = {}
    for piece in map_range(spec, offset, length):
        first, total = spans.get(piece.server, (piece.file_offset, 0))
        spans[piece.server] = (min(first, piece.file_offset),
                               total + piece.length)
    if _MEMO_ENABLED:
        if len(memo) >= _MEMO_MAX:
            memo.clear()
        memo[(offset, length)] = spans
        return dict(spans)
    return spans


# ----------------------------------------------------------- erasure layout
@dataclass(frozen=True)
class ParitySlice:
    """One parity share touched by a write to a stripe group."""

    group: int         # stripe group index
    share_index: int   # k .. n-1
    server: str        # holding server
    chunk_index: int   # backend chunk key (negative)
    length: int        # parity bytes the write dirties in this share


def group_range(spec: ErasureSpec, offset: int, length: int
                ) -> List[Tuple[int, int]]:
    """``(group, overlap_bytes)`` for every group a byte range touches."""
    if offset < 0 or length < 0:
        raise InvalidArgument(f"invalid range: offset={offset} length={length}")
    if length == 0:
        return []
    gb = spec.group_bytes
    end = offset + length
    out = []
    for g in range(offset // gb, (end - 1) // gb + 1):
        lo = max(offset, g * gb)
        hi = min(end, (g + 1) * gb)
        out.append((g, hi - lo))
    return out


def parity_slices(spec: ErasureSpec, offset: int,
                  length: int) -> List[ParitySlice]:
    """Parity shares a write to ``[offset, offset+length)`` must update.

    One slice per (touched group, parity share). The dirtied parity
    length is the share-aligned footprint of the write within the
    group, ``min(stripe_size, overlap)``: parity bytes cover the union
    of per-share chunk offsets the data write touched.
    """
    slices = []
    size = spec.stripe_size
    for group, overlap in group_range(spec, offset, length):
        dirty = min(size, overlap)
        for share_index in range(spec.k, spec.n):
            slices.append(ParitySlice(
                group=group,
                share_index=share_index,
                server=spec.server_of_share(group, share_index),
                chunk_index=spec.parity_chunk_index(group, share_index),
                length=dirty,
            ))
    return slices


def parity_spans(spec: ErasureSpec, offset: int, length: int
                 ) -> Dict[str, Tuple[int, int, Tuple[int, ...]]]:
    """Per-server parity traffic of a write: ``(anchor_offset,
    total_bytes, groups)``.

    The client-side aggregation mirroring :func:`server_spans` for the
    parity half of an erasure write: one request per parity server,
    carrying the group list so the serving side can rebuild exactly
    those parity chunks.
    """
    spans: Dict[str, Tuple[int, int, List[int]]] = {}
    gb = spec.group_bytes
    for piece in parity_slices(spec, offset, length):
        anchor = piece.group * gb
        first, total, groups = spans.get(piece.server, (anchor, 0, []))
        if piece.group not in groups:
            groups.append(piece.group)
        spans[piece.server] = (min(first, anchor), total + piece.length,
                               groups)
    return {server: (first, total, tuple(groups))
            for server, (first, total, groups) in spans.items()}
