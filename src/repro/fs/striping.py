"""Stripe layout computation.

A file with stripe size ``S`` over servers ``[s0, s1, ...]`` places byte
range ``[k*S, (k+1)*S)`` (chunk ``k``) on server ``servers[k % len]``.
:func:`map_range` splits an arbitrary byte range into per-chunk segments,
which is all both the client (to route requests) and the server (to hit
its local extents) need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import InvalidArgument

__all__ = ["StripeSpec", "ChunkSlice", "map_range"]


@dataclass(frozen=True)
class StripeSpec:
    """Striping parameters recorded in file metadata (§4.3)."""

    stripe_size: int
    servers: tuple  # server names, stripe order

    def __post_init__(self):
        if self.stripe_size <= 0:
            raise InvalidArgument(f"stripe_size must be positive: {self.stripe_size}")
        if not self.servers:
            raise InvalidArgument("stripe needs at least one server")

    @property
    def stripe_count(self) -> int:
        return len(self.servers)

    def server_of_chunk(self, chunk_index: int) -> str:
        """The server owning chunk *chunk_index* (round-robin)."""
        return self.servers[chunk_index % len(self.servers)]


@dataclass(frozen=True)
class ChunkSlice:
    """One contiguous piece of a file range falling inside a single chunk."""

    chunk_index: int       # global chunk number within the file
    server: str            # owning server
    file_offset: int       # where this slice starts in the file
    chunk_offset: int      # where this slice starts within its chunk
    length: int            # slice length in bytes

    @property
    def file_end(self) -> int:
        return self.file_offset + self.length


def map_range(spec: StripeSpec, offset: int, length: int) -> List[ChunkSlice]:
    """Split file byte range ``[offset, offset+length)`` into chunk slices.

    Slices are returned in file order; adjacent slices on the same server
    are *not* merged (they are distinct chunks on the device).
    """
    if offset < 0 or length < 0:
        raise InvalidArgument(f"invalid range: offset={offset} length={length}")
    slices: List[ChunkSlice] = []
    pos = offset
    end = offset + length
    size = spec.stripe_size
    while pos < end:
        chunk = pos // size
        chunk_off = pos - chunk * size
        take = min(end - pos, size - chunk_off)
        slices.append(ChunkSlice(
            chunk_index=chunk,
            server=spec.server_of_chunk(chunk),
            file_offset=pos,
            chunk_offset=chunk_off,
            length=take,
        ))
        pos += take
    return slices
