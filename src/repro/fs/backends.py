"""Pluggable chunk-storage backends for a storage node.

Two designs behind one interface:

- :class:`ExtentBackend` — the paper's deployed design (§4.3): a
  byte-addressable extent per stripe chunk on the NVMe region; in-place
  overwrites; no crash recovery story.
- :class:`LogBackend` — the §7 future-work design: chunks live as
  versioned records in a :class:`~repro.fs.logstore.LogStructuredStore`;
  overwrites append; the index is recoverable by a segment scan, giving
  data-path fault tolerance at the cost of read-modify-write on partial
  chunk updates and periodic garbage collection.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

from ..errors import InvalidArgument
from .logstore import LogStructuredStore
from .storage import Extent, NVMeRegion

__all__ = ["ChunkBackend", "ExtentBackend", "LogBackend", "make_backend"]


class ChunkBackend(ABC):
    """Chunk-granular storage: what a stripe slice lands on."""

    name: str = "abstract"

    @abstractmethod
    def write_chunk(self, ino: int, chunk_index: int, chunk_offset: int,
                    data: bytes, chunk_size: int) -> None:
        """Write *data* at *chunk_offset* inside the chunk."""

    @abstractmethod
    def read_chunk(self, ino: int, chunk_index: int, chunk_offset: int,
                   length: int) -> Optional[bytes]:
        """Read from the chunk; None if the chunk was never written."""

    @abstractmethod
    def drop_file(self, ino: int) -> int:
        """Release every chunk of *ino*; returns bytes freed."""

    @property
    @abstractmethod
    def used_bytes(self) -> int:
        """Device bytes currently allocated."""

    def has_chunk(self, ino: int, chunk_index: int) -> bool:
        """True if the chunk has ever been written."""
        return self.read_chunk(ino, chunk_index, 0, 0) is not None


class ExtentBackend(ChunkBackend):
    """One pre-sized extent per chunk; in-place overwrite."""

    name = "extent"

    def __init__(self, capacity: int):
        self.region = NVMeRegion(capacity)
        self.chunks: Dict[Tuple[int, int], Extent] = {}

    def _extent(self, ino: int, chunk_index: int,
                chunk_size: int) -> Extent:
        key = (ino, chunk_index)
        extent = self.chunks.get(key)
        if extent is None:
            extent = self.region.alloc(chunk_size)
            self.chunks[key] = extent
        return extent

    def write_chunk(self, ino, chunk_index, chunk_offset, data, chunk_size):
        extent = self._extent(ino, chunk_index, chunk_size)
        self.region.write(extent, chunk_offset, data)

    def read_chunk(self, ino, chunk_index, chunk_offset, length):
        extent = self.chunks.get((ino, chunk_index))
        if extent is None:
            return None
        return self.region.read(extent, chunk_offset, length)

    def drop_file(self, ino):
        released = 0
        for key in [k for k in self.chunks if k[0] == ino]:
            extent = self.chunks.pop(key)
            self.region.free(extent)
            released += extent.length
        return released

    @property
    def used_bytes(self):
        return self.region.used_bytes


class LogBackend(ChunkBackend):
    """Chunks as versioned whole-chunk records in an append-only log."""

    name = "log"

    def __init__(self, capacity: int, segment_size: Optional[int] = None,
                 gc_live_threshold: float = 0.5):
        if segment_size is None:
            segment_size = min(max(capacity // 64, 1 << 16), capacity // 2)
        self.store = LogStructuredStore(capacity, segment_size=segment_size,
                                        gc_live_threshold=gc_live_threshold)
        self._files: Dict[int, set] = {}  # ino -> chunk indices (volatile)

    def write_chunk(self, ino, chunk_index, chunk_offset, data, chunk_size):
        if chunk_offset < 0 or chunk_offset + len(data) > chunk_size:
            raise InvalidArgument(
                f"write outside chunk: {chunk_offset}+{len(data)} "
                f"(chunk {chunk_size})")
        key = (ino, chunk_index)
        current = self.store.read(key)
        buf = bytearray(current) if current is not None else bytearray(chunk_size)
        buf[chunk_offset:chunk_offset + len(data)] = data
        self.store.write(key, bytes(buf))
        self._files.setdefault(ino, set()).add(chunk_index)

    def read_chunk(self, ino, chunk_index, chunk_offset, length):
        data = self.store.read((ino, chunk_index))
        if data is None:
            return None
        return data[chunk_offset:chunk_offset + length]

    def drop_file(self, ino):
        released = 0
        for chunk_index in sorted(self._files.pop(ino, set())):
            data = self.store.read((ino, chunk_index))
            if data is not None:
                released += len(data)
            self.store.delete((ino, chunk_index))
        return released

    @property
    def used_bytes(self):
        return self.store.live_bytes

    # ------------------------------------------------------------ recovery
    def crash(self) -> None:
        """Lose volatile state (index + file map)."""
        self.store.crash()
        self._files = {}

    def recover(self):
        """Rebuild from the durable log; returns the recovery report."""
        report = self.store.recover()
        self._files = {}
        for ino, chunk_index in self.store.keys():
            self._files.setdefault(ino, set()).add(chunk_index)
        return report


def make_backend(kind: str, capacity: int, **kwargs) -> ChunkBackend:
    """Factory: ``"extent"`` (default design) or ``"log"`` (§7)."""
    if kind == "extent":
        return ExtentBackend(capacity)
    if kind == "log":
        return LogBackend(capacity, **kwargs)
    raise InvalidArgument(f"unknown storage backend {kind!r}")
