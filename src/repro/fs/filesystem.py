"""The ThemisIO userspace file system (§4.3).

A distributed byte-addressable FS across a set of storage servers:

- file and directory *metadata* is placed on the server chosen by a
  consistent hash of the path;
- file *data* is striped over ``stripe_count`` servers (the hash owner
  and its clockwise successors), one extent per stripe chunk;
- directories are stored as files whose content is their entry table;
  creation and deletion update the parent directory's content;
- concurrent reads are lock-free; non-overlapping concurrent writes
  proceed; metadata updates take a per-inode lock (see
  :mod:`repro.fs.locking` — the lock tables live on each storage node
  and are exercised by the burst-buffer server workers).

FS calls here are instantaneous data-structure operations: *time* is
charged by the burst-buffer layer that invokes them, which keeps the
storage logic testable in isolation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from ..errors import (DirectoryNotEmpty, FileExists, FileNotFound,
                      InvalidArgument, IsADirectory, NotADirectory)
from ..units import MiB
from . import erasure as ec
from . import path as pathmod
from .backends import make_backend
from .hashing import ConsistentHashRing
from .locking import MetadataLockTable, RangeLockTable
from .metadata import FileType, Inode, Stat, alloc_ino
from .striping import (ErasureSpec, StripeSpec, group_range, map_range,
                       parity_slices, server_spans)

__all__ = ["StorageNode", "ThemisFS",
           "set_path_cache_enabled", "path_cache_enabled"]

#: Process-wide switch for the path-resolution cache (seed-equivalence
#: suite and benchmarking; cached and uncached lookups are identical).
_PATH_CACHE_ENABLED = True

#: Cap on cached path resolutions per file system.
_PATH_CACHE_MAX = 8192


def set_path_cache_enabled(enabled: bool) -> None:
    """Enable/disable the per-FS path→inode resolution cache."""
    global _PATH_CACHE_ENABLED
    _PATH_CACHE_ENABLED = bool(enabled)


def path_cache_enabled() -> bool:
    """Whether path resolution uses the cache."""
    return _PATH_CACHE_ENABLED


class StorageNode:
    """One server's storage state: device backend, owned metadata, locks."""

    def __init__(self, name: str, capacity: int,
                 storage_backend: str = "extent"):
        self.name = name
        self.backend = make_backend(storage_backend, capacity)
        self.inodes: Dict[int, Inode] = {}  # metadata owned by this server
        self.paths: Dict[str, int] = {}  # path -> ino index for fast lookup
        self.range_locks = RangeLockTable()
        self.meta_locks = MetadataLockTable()

    def add_inode(self, inode: Inode) -> None:
        """Index an inode this server owns."""
        self.inodes[inode.ino] = inode
        self.paths[inode.path] = inode.ino

    def remove_inode(self, inode: Inode) -> None:
        """Drop an inode from this server's index."""
        self.inodes.pop(inode.ino, None)
        self.paths.pop(inode.path, None)

    def write_chunk(self, ino: int, chunk_index: int, chunk_offset: int,
                    data: bytes, chunk_size: int) -> None:
        """Write into one stripe chunk via the storage backend."""
        self.backend.write_chunk(ino, chunk_index, chunk_offset, data,
                                 chunk_size)

    def read_chunk(self, ino: int, chunk_index: int, chunk_offset: int,
                   length: int) -> Optional[bytes]:
        """Read from one stripe chunk; None if never written."""
        return self.backend.read_chunk(ino, chunk_index, chunk_offset, length)

    def drop_file(self, ino: int) -> int:
        """Free every chunk of *ino* on this node; returns bytes released."""
        return self.backend.drop_file(ino)


class ThemisFS:
    """Distributed userspace file system over named storage servers.

    Parameters
    ----------
    server_names:
        Burst-buffer server names (stripe targets and metadata owners).
    capacity_per_server:
        Device bytes per server.
    stripe_size:
        Chunk size in bytes (default 1 MiB).
    default_stripe_count:
        Servers per file unless overridden at ``create``.
    clock:
        Zero-argument callable giving the current time for ctime/mtime
        (wire the simulation engine's ``now`` here).
    """

    def __init__(self, server_names, capacity_per_server: int,
                 stripe_size: int = MiB, default_stripe_count: int = 1,
                 vnodes: int = 64, clock: Optional[Callable[[], float]] = None,
                 storage_backend: str = "extent",
                 erasure: Optional[Tuple[int, int]] = None):
        names = list(server_names)
        if not names:
            raise InvalidArgument("need at least one server")
        if default_stripe_count < 1:
            raise InvalidArgument("default_stripe_count must be >= 1")
        if erasure is not None:
            e_k, e_n = int(erasure[0]), int(erasure[1])
            if not 1 <= e_k < e_n:
                raise InvalidArgument(
                    f"erasure needs 1 <= k < n: k={e_k} n={e_n}")
            if e_n > len(names):
                raise InvalidArgument(
                    f"erasure n={e_n} exceeds server count {len(names)}")
            erasure = (e_k, e_n)
        self.stripe_size = int(stripe_size)
        self.default_stripe_count = min(default_stripe_count, len(names))
        self.storage_backend = storage_backend
        #: (k, n) durability tier; None keeps the plain striped layout
        #: (and the exact pre-erasure behaviour, trace for trace).
        self.erasure = erasure
        self.ring = ConsistentHashRing(names, vnodes=vnodes)
        self.nodes: Dict[str, StorageNode] = {
            name: StorageNode(name, capacity_per_server,
                              storage_backend=storage_backend)
            for name in names}
        self.clock = clock or (lambda: 0.0)
        # Path-resolution cache: raw path string -> Inode, positive hits
        # only (a miss re-runs normalize + ring lookup, so absent paths
        # are always re-checked). Cleared wholesale on any removal or
        # node crash/recovery — removals are rare next to lookups.
        self._path_cache: Dict[str, Inode] = {}
        root = Inode(ino=1, ftype=FileType.DIRECTORY, path="/",
                     ctime=self.clock(), mtime=self.clock())
        self._meta_node("/").add_inode(root)

    # -------------------------------------------------------------- plumbing
    def _meta_node(self, path: str) -> StorageNode:
        return self.nodes[self.ring.lookup(path)]

    def _find(self, path: str) -> Optional[Inode]:
        if _PATH_CACHE_ENABLED:
            cached = self._path_cache.get(path)
            if cached is not None:
                return cached
        norm = pathmod.normalize(path)
        node = self._meta_node(norm)
        ino = node.paths.get(norm)
        inode = node.inodes.get(ino) if ino is not None else None
        if inode is not None and _PATH_CACHE_ENABLED:
            if len(self._path_cache) >= _PATH_CACHE_MAX:
                self._path_cache.clear()
            self._path_cache[path] = inode
        return inode

    def _require(self, path: str) -> Inode:
        inode = self._find(path)
        if inode is None:
            raise FileNotFound(path)
        return inode

    def _require_dir(self, path: str) -> Inode:
        inode = self._require(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return inode

    def metadata_server(self, path: str) -> str:
        """Name of the server owning *path*'s metadata."""
        return self.ring.lookup(pathmod.normalize(path))

    # -------------------------------------------------------------- creation
    def mkdir(self, path: str) -> Inode:
        """Create a directory; parent must exist."""
        norm = pathmod.normalize(path)
        if self._find(norm) is not None:
            raise FileExists(norm)
        parent_path, name = pathmod.split(norm)
        parent = self._require_dir(parent_path)
        now = self.clock()
        inode = Inode(ino=alloc_ino(), ftype=FileType.DIRECTORY, path=norm,
                      ctime=now, mtime=now)
        self._meta_node(norm).add_inode(inode)
        parent.link_child(name, inode.ino)
        parent.mtime = now
        return inode

    def makedirs(self, path: str) -> None:
        """Create *path* and any missing ancestors (idempotent)."""
        comps = pathmod.components(path)
        cur = "/"
        for comp in comps:
            cur = pathmod.join(cur, comp)
            if self._find(cur) is None:
                self.mkdir(cur)

    def create(self, path: str, stripe_count: Optional[int] = None,
               uid: int = 0) -> Inode:
        """Create an empty regular file; parent directory must exist."""
        norm = pathmod.normalize(path)
        if self._find(norm) is not None:
            raise FileExists(norm)
        parent_path, name = pathmod.split(norm)
        parent = self._require_dir(parent_path)
        now = self.clock()
        if self.erasure is not None:
            e_k, e_n = self.erasure
            servers = tuple(self.ring.lookup_n(norm, e_n))
            spec = ErasureSpec(self.stripe_size, servers, e_k)
        else:
            count = (stripe_count if stripe_count is not None
                     else self.default_stripe_count)
            if count < 1:
                raise InvalidArgument(f"stripe_count must be >= 1: {count}")
            count = min(count, len(self.nodes))
            spec = StripeSpec(self.stripe_size,
                              tuple(self.ring.lookup_n(norm, count)))
        inode = Inode(ino=alloc_ino(), ftype=FileType.FILE, path=norm,
                      ctime=now, mtime=now, uid=uid, stripe=spec)
        self._meta_node(norm).add_inode(inode)
        parent.link_child(name, inode.ino)
        parent.mtime = now
        return inode

    # ----------------------------------------------------------------- query
    def exists(self, path: str) -> bool:
        """True if *path* names an existing file or directory."""
        return self._find(path) is not None

    def lookup(self, path: str) -> Optional[Inode]:
        """The inode at *path*, or None."""
        return self._find(path)

    def stat(self, path: str) -> Stat:
        """Stat snapshot of *path* (raises FileNotFound if absent)."""
        return self._require(path).stat()

    def readdir(self, path: str) -> List[str]:
        """Sorted child names of directory *path* (§4.3 directory query)."""
        return sorted(self._require_dir(path).entries)

    # ------------------------------------------------------------------- I/O
    def write(self, path: str, offset: int, data: bytes) -> int:
        """Write *data* at *offset*; extends the file as needed."""
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if offset < 0:
            raise InvalidArgument(f"negative offset: {offset}")
        for piece in map_range(inode.stripe, offset, len(data)):
            node = self.nodes[piece.server]
            lo = piece.file_offset - offset
            node.write_chunk(inode.ino, piece.chunk_index, piece.chunk_offset,
                             data[lo:lo + piece.length], self.stripe_size)
        inode.size = max(inode.size, offset + len(data))
        inode.mtime = self.clock()
        if isinstance(inode.stripe, ErasureSpec):
            for group, _ in group_range(inode.stripe, offset, len(data)):
                self.rebuild_parity(path, group)
        return len(data)

    def read(self, path: str, offset: int, length: int) -> bytes:
        """Read up to *length* bytes at *offset*; short at EOF; holes are zeros."""
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if offset < 0 or length < 0:
            raise InvalidArgument(f"invalid range: {offset}+{length}")
        length = max(0, min(length, inode.size - offset))
        if length == 0:
            return b""
        out = bytearray(length)
        for piece in map_range(inode.stripe, offset, length):
            node = self.nodes[piece.server]
            data = node.read_chunk(inode.ino, piece.chunk_index,
                                   piece.chunk_offset, piece.length)
            if data is None:
                continue  # hole: stays zero
            lo = piece.file_offset - offset
            out[lo:lo + piece.length] = data
        return bytes(out)

    def write_accounting(self, path: str, offset: int, length: int) -> int:
        """Size-only write: advance metadata without materialising bytes.

        The arbitration experiments move simulated gigabytes; allocating
        real buffers for them would be pure overhead. Placement, striping
        and metadata behave exactly as :meth:`write`.
        """
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if offset < 0 or length < 0:
            raise InvalidArgument(f"invalid range: {offset}+{length}")
        inode.size = max(inode.size, offset + length)
        inode.mtime = self.clock()
        return length

    def read_accounting(self, path: str, offset: int, length: int) -> int:
        """Size-only read: the byte count :meth:`read` would return."""
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if offset < 0 or length < 0:
            raise InvalidArgument(f"invalid range: {offset}+{length}")
        return max(0, min(length, inode.size - offset))

    def truncate(self, path: str, size: int = 0) -> None:
        """Truncate the file to *size* (only shrink-to-zero frees extents)."""
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if size < 0:
            raise InvalidArgument(f"negative size: {size}")
        if size == 0:
            for node in self.nodes.values():
                node.drop_file(inode.ino)
        inode.size = min(inode.size, size) if size else 0
        inode.mtime = self.clock()

    # -------------------------------------------------------------- deletion
    def unlink(self, path: str) -> None:
        """Remove a regular file and free its extents on every server."""
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        for node in self.nodes.values():
            node.drop_file(inode.ino)
        self._remove_meta(inode)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        inode = self._require_dir(path)
        if inode.path == "/":
            raise InvalidArgument("cannot remove root")
        if inode.entries:
            raise DirectoryNotEmpty(path)
        self._remove_meta(inode)

    def _remove_meta(self, inode: Inode) -> None:
        parent_path, name = pathmod.split(inode.path)
        parent = self._require_dir(parent_path)
        parent.unlink_child(name)
        parent.mtime = self.clock()
        self._meta_node(inode.path).remove_inode(inode)
        # The cache is keyed by raw (possibly unnormalised) spellings, so
        # evicting one inode means dropping everything.
        self._path_cache.clear()

    # -------------------------------------------------------- erasure tier
    def _require_erasure(self, path: str) -> Inode:
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if not isinstance(inode.stripe, ErasureSpec):
            raise InvalidArgument(f"{path} is not erasure-coded")
        return inode

    def _read_share(self, inode: Inode, group: int, share_index: int,
                    overlay: Optional[Tuple[int, bytes]] = None) -> bytes:
        """Full on-device content of one share (zero-filled holes).

        ``overlay=(offset, data)`` imposes an in-flight write's bytes
        over the chunk state for data shares — the degraded-write path
        computes parity from the true data even when the share's home
        server is down and its chunk was never written.
        """
        spec = inode.stripe
        chunk = spec.chunk_index_of_share(group, share_index)
        node = self.nodes[spec.server_of_share(group, share_index)]
        data = node.read_chunk(inode.ino, chunk, 0, self.stripe_size)
        if data is None:
            data = bytes(self.stripe_size)
        elif len(data) < self.stripe_size:
            data = data + bytes(self.stripe_size - len(data))
        if overlay is not None and share_index < spec.k:
            w_off, w_data = overlay
            # This data share covers logical bytes [lo, lo + stripe_size).
            lo = (group * spec.k + share_index) * self.stripe_size
            a = max(lo, w_off)
            b = min(lo + self.stripe_size, w_off + len(w_data))
            if a < b:
                data = (data[:a - lo] + w_data[a - w_off:b - w_off]
                        + data[b - lo:])
        return data

    def _group_materialised(self, inode: Inode, group: int) -> bool:
        """True if any share of *group* has ever been written (the
        accounting workloads never materialise bytes; parity work is
        skipped for their hole-groups, whose shares all decode to
        zeros anyway)."""
        spec = inode.stripe
        for s in range(spec.n):
            chunk = spec.chunk_index_of_share(group, s)
            node = self.nodes[spec.server_of_share(group, s)]
            if node.backend.has_chunk(inode.ino, chunk):
                return True
        return False

    def rebuild_parity(self, path: str, group: int,
                       only_server: Optional[str] = None,
                       overlay: Optional[Tuple[int, bytes]] = None,
                       skip_servers: Set[str] = frozenset()) -> int:
        """Recompute *group*'s parity shares from its data shares.

        ``only_server`` restricts the writes to parity shares held by
        that server (the burst-buffer worker path: each parity server
        rebuilds its own shares). ``overlay`` imposes an in-flight
        write's bytes over the chunk state (degraded writes: parity
        reflects data whose home server never received it) and
        ``skip_servers`` keeps the rebuild off down parity servers
        (their stale shares are repair's problem, not new content).
        Hole-groups are left untouched. Returns parity bytes written.
        """
        inode = self._require_erasure(path)
        spec = inode.stripe
        if overlay is None and not self._group_materialised(inode, group):
            return 0
        data_shares = [self._read_share(inode, group, s, overlay=overlay)
                       for s in range(spec.k)]
        parities = ec.encode(spec.k, spec.n, data_shares)
        written = 0
        for j, parity in enumerate(parities):
            share_index = spec.k + j
            server = spec.server_of_share(group, share_index)
            if only_server is not None and server != only_server:
                continue
            if server in skip_servers:
                continue
            self.nodes[server].write_chunk(
                inode.ino, spec.parity_chunk_index(group, share_index),
                0, parity, self.stripe_size)
            written += len(parity)
        return written

    def read_reconstruct(self, path: str, offset: int, length: int,
                         unavailable: Set[str]) -> Tuple[bytes, Dict[str, int]]:
        """Degraded read: *unavailable* servers' shares are reconstructed
        from any ``k`` surviving shares per group.

        Returns ``(data, info)`` where info counts
        ``groups_reconstructed``, ``shares_reconstructed``, and
        ``lost_bytes`` (bytes of the range whose group had fewer than
        ``k`` reachable shares — returned zero-filled, never raised).
        """
        inode = self._require_erasure(path)
        spec = inode.stripe
        if offset < 0 or length < 0:
            raise InvalidArgument(f"invalid range: {offset}+{length}")
        length = max(0, min(length, inode.size - offset))
        info = {"groups_reconstructed": 0, "shares_reconstructed": 0,
                "lost_bytes": 0}
        if length == 0:
            return b"", info
        out = bytearray(length)
        degraded: Dict[int, Optional[List[bytes]]] = {}
        for piece in map_range(spec, offset, length):
            lo = piece.file_offset - offset
            if piece.server not in unavailable:
                data = self.nodes[piece.server].read_chunk(
                    inode.ino, piece.chunk_index, piece.chunk_offset,
                    piece.length)
                if data is not None:
                    out[lo:lo + piece.length] = data
                continue
            group = piece.chunk_index // spec.k
            if group not in degraded:
                degraded[group] = self._decode_group(inode, group,
                                                     unavailable, info)
            shares = degraded[group]
            if shares is None:
                info["lost_bytes"] += piece.length
                continue  # unrecoverable: stays zero
            share = shares[piece.chunk_index % spec.k]
            out[lo:lo + piece.length] = share[
                piece.chunk_offset:piece.chunk_offset + piece.length]
        return bytes(out), info

    def _decode_group(self, inode: Inode, group: int,
                      unavailable: Set[str], info: Dict[str, int]
                      ) -> Optional[List[bytes]]:
        """Data shares of *group* from reachable shares; None if fewer
        than ``k`` survive."""
        spec = inode.stripe
        held = {}
        for s in range(spec.n):
            if spec.server_of_share(group, s) in unavailable:
                continue
            held[s] = self._read_share(inode, group, s)
            if len(held) == spec.k:
                break
        if len(held) < spec.k:
            return None
        missing = sum(1 for s in range(spec.k) if s not in held)
        info["groups_reconstructed"] += 1
        info["shares_reconstructed"] += missing
        return ec.decode(spec.k, spec.n, held)

    def repair_group(self, path: str, group: int, dead: str,
                     substitute: str,
                     unavailable: Optional[Set[str]] = None
                     ) -> Tuple[str, int]:
        """Rebuild *dead*'s share of *group* onto *substitute*.

        Returns ``(outcome, bytes_written)`` with outcome ``"repaired"``
        (share content reconstructed and written), ``"clean"`` (hole
        group — nothing materialised to move), or ``"lost"`` (fewer than
        ``k`` shares reachable; nothing written, loss is the caller's to
        account).
        """
        inode = self._require_erasure(path)
        spec = inode.stripe
        down = set(unavailable) if unavailable is not None else set()
        down.add(dead)
        if not self._group_materialised(inode, group):
            return "clean", 0
        lost_share = spec.share_of_server(group, dead)
        held = {}
        for s in range(spec.n):
            if s == lost_share or spec.server_of_share(group, s) in down:
                continue
            held[s] = self._read_share(inode, group, s)
            if len(held) == spec.k:
                break
        if len(held) < spec.k:
            return "lost", 0
        content = ec.reconstruct_share(spec.k, spec.n, held, lost_share)
        self.nodes[substitute].write_chunk(
            inode.ino, spec.chunk_index_of_share(group, lost_share),
            0, content, self.stripe_size)
        return "repaired", len(content)

    def restripe(self, path: str, old_server: str, new_server: str) -> None:
        """Swap one server in the file's erasure placement (repair's
        final step: shares were copied to *new_server*, route I/O there)."""
        inode = self._require_erasure(path)
        spec = inode.stripe
        if old_server not in spec.servers:
            raise InvalidArgument(
                f"{old_server} not in {path}'s placement {spec.servers}")
        if new_server in spec.servers:
            raise InvalidArgument(
                f"{new_server} already in {path}'s placement "
                f"{spec.servers}")
        servers = tuple(new_server if s == old_server else s
                        for s in spec.servers)
        inode.stripe = ErasureSpec(spec.stripe_size, servers, spec.k)
        inode.mtime = self.clock()

    def erasure_files_on(self, server: str) -> List[str]:
        """Paths of erasure-coded files with shares placed on *server*
        (sorted: the deterministic repair work list)."""
        paths = set()
        for node in self.nodes.values():
            for inode in node.inodes.values():
                if (not inode.is_dir
                        and isinstance(inode.stripe, ErasureSpec)
                        and server in inode.stripe.servers):
                    paths.add(inode.path)
        return sorted(paths)

    # ----------------------------------------------------------- fault model
    def crash_node(self, name: str) -> None:
        """Model server *name* crashing: locks vanish, volatile chunk
        indexes (log backends) are lost.

        The base class keeps namespace metadata through a crash — without
        a journal there would be nothing to rebuild it from, and a
        permanently wedged namespace is not a useful model.
        :class:`~repro.fs.journal.JournaledFS` overrides this to also
        lose the node's metadata tables, which :meth:`recover_node` then
        rebuilds from the journal.
        """
        node = self.nodes[name]
        node.range_locks.reset()
        node.meta_locks.reset()
        if hasattr(node.backend, "crash"):
            node.backend.crash()
        self._path_cache.clear()

    def recover_node(self, name: str) -> Dict[str, object]:
        """Bring server *name* back: rescan a log-backed store if present.

        Returns recovery statistics (``applied`` journal entries — always
        zero here — and per-backend ``scans``).
        """
        node = self.nodes[name]
        scans = {}
        if hasattr(node.backend, "recover"):
            scans[name] = node.backend.recover()
        return {"applied": 0, "scans": scans}

    # --------------------------------------------------------------- routing
    def data_servers(self, path: str, offset: int, length: int) -> Set[str]:
        """Servers touched by an I/O to ``[offset, offset+length)`` of *path*.

        Clients use this (the layout is deterministic) to route requests.
        """
        inode = self._require(path)
        if inode.is_dir:
            raise IsADirectory(path)
        if length == 0:
            return {inode.stripe.servers[0]}
        return set(server_spans(inode.stripe, offset, length))

    def used_bytes(self) -> Dict[str, int]:
        """Per-server device usage."""
        return {name: node.backend.used_bytes
                for name, node in self.nodes.items()}
