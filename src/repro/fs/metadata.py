"""Inodes, directory entries, and stat results.

§4.3: "both directories and files are stored as files"; directory content
is the entry table of its children, and creating a file/directory updates
the parent's content. Striping information is a record in file metadata.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Optional, Union

from ..errors import FSError
from .striping import ErasureSpec, StripeSpec

__all__ = ["FileType", "Inode", "Stat", "alloc_ino"]

_ino_counter = itertools.count(2)  # 1 is reserved for each FS root


def alloc_ino() -> int:
    """Allocate a fresh inode number (global across the simulation)."""
    return next(_ino_counter)


class FileType(Enum):
    """Inode kinds: regular file or directory."""
    FILE = "file"
    DIRECTORY = "directory"


@dataclass
class Inode:
    """File or directory metadata.

    For directories, ``entries`` maps child name to child inode number —
    the directory's "file content". For regular files, ``stripe`` records
    the layout and ``size`` the logical length.
    """

    ino: int
    ftype: FileType
    path: str
    size: int = 0
    ctime: float = 0.0
    mtime: float = 0.0
    nlink: int = 1
    uid: int = 0
    stripe: Optional[Union[StripeSpec, ErasureSpec]] = None
    entries: Optional[Dict[str, int]] = None

    def __post_init__(self):
        if self.ftype is FileType.DIRECTORY and self.entries is None:
            self.entries = {}
        if self.ftype is FileType.FILE and self.stripe is None:
            raise FSError(f"file inode {self.path!r} needs a stripe spec")
        # Running entry-table size, maintained by link_child/unlink_child
        # so stat() stays O(1) on big directories.
        self._dir_bytes = sum(len(name) + 16 for name in (self.entries or {}))

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY

    # ---------------------------------------------------- directory mutation
    def link_child(self, name: str, ino: int) -> None:
        """Add (or re-point) directory entry *name* -> *ino*."""
        if name not in self.entries:
            self._dir_bytes += len(name) + 16
        self.entries[name] = ino

    def unlink_child(self, name: str) -> None:
        """Drop directory entry *name* if present."""
        if self.entries.pop(name, None) is not None:
            self._dir_bytes -= len(name) + 16

    @property
    def dir_size(self) -> int:
        """Approximate on-device size of a directory's entry table
        (name + fixed-size record per entry, like a compact dirent)."""
        if not self.is_dir:
            return self.size
        return self._dir_bytes

    def stat(self) -> "Stat":
        """An immutable stat snapshot of this inode."""
        return Stat(
            ino=self.ino,
            ftype=self.ftype,
            size=self.size if not self.is_dir else self.dir_size,
            ctime=self.ctime,
            mtime=self.mtime,
            nlink=self.nlink,
            uid=self.uid,
            stripe_count=self.stripe.stripe_count if self.stripe else 0,
        )


@dataclass(frozen=True)
class Stat:
    """Immutable snapshot returned by ``stat()``."""

    ino: int
    ftype: FileType
    size: int
    ctime: float
    mtime: float
    nlink: int
    uid: int
    stripe_count: int

    @property
    def is_dir(self) -> bool:
        return self.ftype is FileType.DIRECTORY
