"""Concurrency control mirroring §4.3's rules.

- Concurrent reads of the same file: no locking.
- Concurrent writes: allowed when byte ranges do not conflict.
- Metadata updates: a per-inode mutex.

In the simulator, FS calls execute instantaneously inside a server
worker's service window; the lock table is what decides whether two
*in-flight* requests may be serviced concurrently by different workers.
:class:`RangeLockTable` implements writer-vs-writer range conflicts
(readers never block), :class:`MetadataLockTable` per-key mutexes.
Both are non-blocking try-lock interfaces.

Waiting is **event-driven**: a caller whose ``try_lock`` fails registers
a waiter with :meth:`~RangeLockTable.wait` and parks on it; every
release wakes all waiters on that inode (they retry, and losers re-wait)
instead of the waiters polling on a timer. Wakeups happen in FIFO
registration order, so contention resolution is deterministic. The
tables stay simulation-agnostic — a waiter is anything with a
``succeed()`` method, which :class:`repro.sim.process.Event` provides.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..errors import FSError

__all__ = ["RangeLockTable", "MetadataLockTable"]


class _WaiterMixin:
    """FIFO wake-all waiter queues keyed by inode number."""

    __slots__ = ("_waiters",)

    def __init__(self):
        self._waiters: Dict[int, List[object]] = {}

    def wait(self, ino: int, waiter: object) -> None:
        """Register *waiter* to be woken at the next release on *ino*.

        *waiter* needs a ``succeed()`` method (e.g. a sim ``Event``).
        Each registration is one-shot: a woken waiter that loses the
        retry race must register a fresh waiter.
        """
        self._waiters.setdefault(ino, []).append(waiter)

    def waiters(self, ino: int) -> int:
        """Number of waiters currently parked on *ino*."""
        return len(self._waiters.get(ino, ()))

    def _wake(self, ino: int) -> None:
        pending = self._waiters.pop(ino, None)
        if pending:
            for waiter in pending:
                waiter.succeed()

    def _wake_all(self) -> None:
        """Wake every parked waiter on every inode (crash reset path)."""
        waiters, self._waiters = self._waiters, {}
        for pending in waiters.values():
            for waiter in pending:
                waiter.succeed()


class RangeLockTable(_WaiterMixin):
    """Byte-range write locks per file (inode number)."""

    __slots__ = ("_writes",)

    def __init__(self):
        super().__init__()
        self._writes: Dict[int, List[Tuple[int, int, object]]] = {}

    def try_lock_write(self, ino: int, offset: int, length: int,
                       owner: object) -> bool:
        """Acquire a write lock on ``[offset, offset+length)``; False on conflict.

        Per §4.3, concurrent writes proceed "without any limitation if the
        byte ranges do not conflict".
        """
        if offset < 0 or length < 0:
            raise FSError(f"invalid lock range: {offset}+{length}")
        end = offset + length
        held = self._writes.get(ino, [])
        for o, e, _owner in held:
            if offset < e and o < end:
                return False
        self._writes.setdefault(ino, []).append((offset, end, owner))
        return True

    def unlock_write(self, ino: int, owner: object) -> int:
        """Release all write locks held by *owner* on *ino*; returns count.

        Releasing wakes every waiter parked on *ino*.
        """
        held = self._writes.get(ino)
        if not held:
            return 0
        kept = [(o, e, w) for (o, e, w) in held if w is not owner]
        released = len(held) - len(kept)
        if kept:
            self._writes[ino] = kept
        else:
            self._writes.pop(ino, None)
        if released:
            self._wake(ino)
        return released

    def write_locks_held(self, ino: int) -> int:
        """Number of write locks currently held on *ino*."""
        return len(self._writes.get(ino, []))

    def reset(self) -> None:
        """Drop every lock and wake every waiter (server crash path).

        Woken waiters retry their acquisition; workers on a crashed
        server observe the crash epoch and abandon the request instead,
        so nobody is left parked forever on a lock that will never be
        released.
        """
        self._writes.clear()
        self._wake_all()


class MetadataLockTable(_WaiterMixin):
    """Per-inode mutex for metadata updates (§4.3)."""

    __slots__ = ("_held",)

    def __init__(self):
        super().__init__()
        self._held: Dict[int, object] = {}

    def try_lock(self, ino: int, owner: object) -> bool:
        """Acquire the inode's metadata mutex; False if another owner holds it."""
        current = self._held.get(ino)
        if current is None:
            self._held[ino] = owner
            return True
        return current is owner  # re-entrant for the same owner

    def unlock(self, ino: int, owner: object) -> None:
        """Release the mutex (must be the owner) and wake waiters."""
        if self._held.get(ino) is not owner:
            raise FSError(f"unlocking metadata lock not held by owner: ino={ino}")
        del self._held[ino]
        self._wake(ino)

    def unlock_if_held(self, ino: int, owner: object) -> bool:
        """Release the mutex only if *owner* holds it; True if released.

        Crash-tolerant variant of :meth:`unlock`: after a server crash
        wipes the table, the releasing worker may no longer be the
        recorded owner — that is not an error on this path.
        """
        if self._held.get(ino) is not owner:
            return False
        del self._held[ino]
        self._wake(ino)
        return True

    def reset(self) -> None:
        """Drop every mutex and wake every waiter (server crash path)."""
        self._held.clear()
        self._wake_all()

    def locked(self, ino: int) -> bool:
        """True if *ino*'s metadata mutex is held."""
        return ino in self._held

    def holders(self) -> Set[int]:
        """The inode numbers currently locked."""
        return set(self._held)
