"""Concurrency control mirroring §4.3's rules.

- Concurrent reads of the same file: no locking.
- Concurrent writes: allowed when byte ranges do not conflict.
- Metadata updates: a per-inode mutex.

In the simulator, FS calls execute instantaneously inside a server
worker's service window; the lock table is what decides whether two
*in-flight* requests may be serviced concurrently by different workers.
:class:`RangeLockTable` implements writer-vs-writer range conflicts
(readers never block), :class:`MetadataLockTable` per-key mutexes.
Both are non-blocking try-lock interfaces.

Waiting is **event-driven**: a caller whose ``try_lock`` fails registers
a waiter with :meth:`~RangeLockTable.wait` and parks on it. Waiter
entries are keyed by *owner* and keep their FIFO position across retry
failures: a woken loser that re-registers re-arms its existing entry in
place instead of moving to the back of the queue, so contention
resolution order is deterministic and independent of how many no-op
wakeups happen in between.

Release-time wakeup policy is a module toggle
(:func:`set_range_wake_enabled`):

- **range-indexed** (the default): a write-lock release wakes only the
  waiters whose byte ranges overlap a released range, in FIFO order; a
  metadata-mutex release wakes only the head waiter. Waiters that could
  not possibly acquire are never scheduled, so a release's wakeup cost
  scales with the *conflicting* waiters, not the inode's total fan-out.
- **wake-all** (toggle off, the original behaviour): every release
  wakes every waiter on the inode and losers re-register.

The two policies produce bit-identical simulated traces: a waiter whose
range overlaps no released range retries against the same set of
conflicting held locks and deterministically fails, so its wake-all
wakeup is a pure no-op — and because losers keep their queue position,
skipping the no-op leaves the acquisition order unchanged. The tables
stay simulation-agnostic — a waiter is anything with a ``succeed()``
method, which :class:`repro.sim.process.Event` provides.

Within range-indexed mode, conflict-candidate *selection* has its own
fast path (:func:`set_waiter_index_enabled`): each inode keeps a bucket
index over its armed waiter ranges (power-of-two bucket width sized
from the inode's first waited range; entries spanning too many buckets
park in a wildcard list). A release collects candidates from only the
buckets its freed ranges touch plus the wildcards, sorts them by queue
sequence number, and runs the exact overlap check on that shortlist —
identical wake set and FIFO order to scanning the whole queue, without
the O(total waiters) scan on high-fan-in inodes. The index is
maintained unconditionally (cheap dict ops); the toggle gates only
whether ``_wake`` consults it, so A/B bench runs compare pure
candidate-selection cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import FSError

__all__ = ["RangeLockTable", "MetadataLockTable",
           "set_range_wake_enabled", "range_wake_enabled",
           "set_waiter_index_enabled", "waiter_index_enabled"]

#: Process-wide switch for range-indexed (conflict-only) wakeups.
_RANGE_WAKE_ENABLED = True

#: Process-wide switch for bucket-indexed candidate selection inside
#: range-indexed wakeups (no effect while range wake is disabled).
_WAITER_INDEX_ENABLED = True

#: Minimum bucket width exponent: buckets never get finer than 2^10 B.
_MIN_BUCKET_BITS = 10

#: Bucket width used when an inode's first waiter is unranged.
_DEFAULT_BUCKET_WIDTH = 1 << 12

#: An entry spanning more than this many buckets indexes as a wildcard
#: (always a candidate) instead of bloating per-bucket lists.
_INDEX_SPAN_CAP = 8


def set_range_wake_enabled(enabled: bool) -> None:
    """Enable/disable conflict-indexed wakeups (module-wide)."""
    global _RANGE_WAKE_ENABLED
    _RANGE_WAKE_ENABLED = bool(enabled)


def range_wake_enabled() -> bool:
    """Whether releases wake only range-conflicting waiters."""
    return _RANGE_WAKE_ENABLED


def set_waiter_index_enabled(enabled: bool) -> None:
    """Enable/disable bucket-indexed wake candidate selection."""
    global _WAITER_INDEX_ENABLED
    _WAITER_INDEX_ENABLED = bool(enabled)


def waiter_index_enabled() -> bool:
    """Whether releases shortlist candidates via the bucket index."""
    return _WAITER_INDEX_ENABLED


class _WaitEntry:
    """One parked waiter: its conflict range and one-shot wake event."""

    __slots__ = ("offset", "end", "event", "woken", "seq")

    def __init__(self, offset: Optional[int], end: Optional[int],
                 event: object, seq: int):
        self.offset = offset   # None = conflicts with any release
        self.end = end
        self.event = event
        self.woken = False
        self.seq = seq         # queue position (stable across re-arms)


class _RangeIndex:
    """Bucket index over one inode's armed waiter ranges.

    Owners are placed into ``offset // width`` buckets (dicts used as
    ordered sets — DET004-safe); unranged or too-wide entries go to the
    wildcard list. Strictly an over-approximation: ``candidates`` may
    return non-overlapping owners (the caller re-checks exactly), but
    never misses an overlapping one — each ranged entry occupies every
    bucket its byte range touches.
    """

    __slots__ = ("width", "buckets", "wildcards", "placed")

    def __init__(self, width: int):
        self.width = width
        # bucket id -> {owner: None}, insertion-ordered.
        self.buckets: Dict[int, Dict[object, None]] = {}
        self.wildcards: Dict[object, None] = {}
        # owner -> (lo_bucket, hi_bucket), or None for wildcard entries.
        self.placed: Dict[object, Optional[Tuple[int, int]]] = {}

    def place(self, owner: object, offset: Optional[int],
              end: Optional[int]) -> None:
        """(Re-)index *owner* under its current conflict range."""
        self.remove(owner)
        if offset is None or end is None:
            self.placed[owner] = None
            self.wildcards[owner] = None
            return
        lo = offset // self.width
        hi = max(lo, (end - 1) // self.width)
        if hi - lo + 1 > _INDEX_SPAN_CAP:
            self.placed[owner] = None
            self.wildcards[owner] = None
            return
        self.placed[owner] = (lo, hi)
        for b in range(lo, hi + 1):
            bucket = self.buckets.get(b)
            if bucket is None:
                bucket = self.buckets[b] = {}
            bucket[owner] = None

    def remove(self, owner: object) -> None:
        """Drop *owner* from every bucket (no-op if absent)."""
        if owner not in self.placed:
            return
        span = self.placed.pop(owner)
        if span is None:
            self.wildcards.pop(owner, None)
            return
        lo, hi = span
        for b in range(lo, hi + 1):
            bucket = self.buckets.get(b)
            if bucket is not None:
                bucket.pop(owner, None)
                if not bucket:
                    del self.buckets[b]

    def candidates(self, ranges: List[Tuple[int, int]]
                   ) -> Dict[object, None]:
        """Owners possibly overlapping *ranges* (plus all wildcards),
        deduplicated; the caller orders them by queue sequence."""
        out: Dict[object, None] = {}
        for owner in self.wildcards:
            out[owner] = None
        for lo, hi in ranges:
            b0 = lo // self.width
            b1 = max(b0, (hi - 1) // self.width)
            for b in range(b0, b1 + 1):
                bucket = self.buckets.get(b)
                if bucket:
                    for owner in bucket:
                        out[owner] = None
        return out


class _WaiterMixin:
    """FIFO waiter queues keyed by inode number, entries keyed by owner.

    Entries are one-shot (a woken waiter is skipped by later wakes) but
    *positional*: re-registering under the same owner re-arms the entry
    where it already sits. An entry leaves the queue when its owner
    acquires the lock (``try_lock*`` success) or on the crash reset.
    """

    __slots__ = ("_waiters", "_index", "_next_seq")

    def __init__(self):
        # ino -> {owner key -> entry}; dicts preserve insertion order.
        self._waiters: Dict[int, Dict[object, _WaitEntry]] = {}
        # ino -> bucket index over the same entries (kept in lock-step).
        self._index: Dict[int, _RangeIndex] = {}
        self._next_seq = 0

    def _index_for(self, ino: int, offset: Optional[int],
                   length: Optional[int]) -> _RangeIndex:
        """The inode's bucket index, created on first wait with a width
        sized to that first range (power of two covering it)."""
        index = self._index.get(ino)
        if index is None:
            if offset is None or length is None or length <= 0:
                width = _DEFAULT_BUCKET_WIDTH
            else:
                width = 1 << max(_MIN_BUCKET_BITS,
                                 (length - 1).bit_length())
            index = self._index[ino] = _RangeIndex(width)
        return index

    def wait(self, ino: int, waiter: object, offset: Optional[int] = None,
             length: Optional[int] = None, owner: object = None) -> None:
        """Register *waiter* to be woken at the next conflicting release
        on *ino*.

        *waiter* needs a ``succeed()`` method (e.g. a sim ``Event``).
        *offset*/*length* scope the wakeup to releases overlapping that
        byte range (``None`` = woken by any release). *owner* keys the
        entry so a retry loser re-arms in place; it defaults to the
        waiter object itself (every call then appends a fresh entry).
        """
        key = waiter if owner is None else owner
        queue = self._waiters.get(ino)
        if queue is None:
            queue = self._waiters[ino] = {}
        end = None if offset is None or length is None else offset + length
        entry = queue.get(key)
        index = self._index_for(ino, offset, length)
        if entry is not None:
            # Re-arm in place: the loser keeps its FIFO position.
            if entry.offset != offset or entry.end != end:
                index.place(key, offset, end)
            entry.offset = offset
            entry.end = end
            entry.event = waiter
            entry.woken = False
        else:
            queue[key] = _WaitEntry(offset, end, waiter, self._next_seq)
            self._next_seq += 1
            index.place(key, offset, end)

    def waiters(self, ino: int) -> int:
        """Number of waiters currently parked (armed) on *ino*."""
        queue = self._waiters.get(ino)
        if not queue:
            return 0
        return sum(1 for entry in queue.values() if not entry.woken)

    def _discard_waiter(self, ino: int, owner: object) -> None:
        """Drop *owner*'s entry on *ino* (called on lock acquisition)."""
        queue = self._waiters.get(ino)
        if queue and queue.pop(owner, None) is not None:
            index = self._index.get(ino)
            if index is not None:
                index.remove(owner)
            if not queue:
                del self._waiters[ino]
                self._index.pop(ino, None)

    def _wake(self, ino: int,
              ranges: Optional[List[Tuple[int, int]]] = None) -> int:
        """Wake armed waiters on *ino* in FIFO order; returns the count.

        With range-indexed wakeups enabled and *ranges* given, only
        waiters overlapping a released range are woken; otherwise every
        armed waiter is. Entries stay queued (one-shot, positional) —
        the owner either acquires (entry discarded) or re-arms.

        Candidate selection: with the bucket index enabled, only owners
        in buckets touched by *ranges* (plus wildcards) are considered,
        sorted back into queue-sequence order before the exact overlap
        check — the same waiters wake in the same order as a full scan.
        """
        queue = self._waiters.get(ino)
        if not queue:
            return 0
        indexed = _RANGE_WAKE_ENABLED and ranges is not None
        entries = None
        if indexed and _WAITER_INDEX_ENABLED:
            index = self._index.get(ino)
            if index is not None and len(index.placed) == len(queue):
                shortlist = [queue[owner]
                             for owner in index.candidates(ranges)
                             if owner in queue]
                shortlist.sort(key=lambda e: e.seq)
                entries = shortlist
        if entries is None:
            entries = list(queue.values())
        woken = 0
        for entry in entries:
            if entry.woken:
                continue
            if getattr(entry.event, "cancelled", False):
                # The waiter abandoned the wait (timer-style cancel);
                # succeed() on it would raise. Retire the entry instead.
                entry.woken = True
                continue
            if indexed and entry.offset is not None:
                for lo, hi in ranges:
                    if entry.offset < hi and lo < entry.end:
                        break
                else:
                    continue
            entry.woken = True
            woken += 1
            entry.event.succeed()
        return woken

    def _wake_head(self, ino: int) -> int:
        """Wake only the first armed waiter (mutex release fast path)."""
        queue = self._waiters.get(ino)
        if not queue:
            return 0
        for entry in queue.values():
            if entry.woken:
                continue
            if getattr(entry.event, "cancelled", False):
                entry.woken = True  # abandoned wait: retire, try the next
                continue
            entry.woken = True
            entry.event.succeed()
            return 1
        return 0

    def _wake_all(self) -> None:
        """Wake every parked waiter on every inode (crash reset path)."""
        waiters, self._waiters = self._waiters, {}
        self._index = {}
        for queue in waiters.values():
            for entry in queue.values():
                if entry.woken or getattr(entry.event, "cancelled", False):
                    continue
                entry.event.succeed()


class RangeLockTable(_WaiterMixin):
    """Byte-range write locks per file (inode number)."""

    __slots__ = ("_writes",)

    def __init__(self):
        super().__init__()
        self._writes: Dict[int, List[Tuple[int, int, object]]] = {}

    def try_lock_write(self, ino: int, offset: int, length: int,
                       owner: object) -> bool:
        """Acquire a write lock on ``[offset, offset+length)``; False on conflict.

        Per §4.3, concurrent writes proceed "without any limitation if the
        byte ranges do not conflict".
        """
        if offset < 0 or length < 0:
            raise FSError(f"invalid lock range: {offset}+{length}")
        end = offset + length
        held = self._writes.get(ino, [])
        for o, e, _owner in held:
            if offset < e and o < end:
                return False
        self._writes.setdefault(ino, []).append((offset, end, owner))
        if self._waiters:
            self._discard_waiter(ino, owner)
        return True

    def unlock_write(self, ino: int, owner: object) -> int:
        """Release all write locks held by *owner* on *ino*; returns count.

        Releasing wakes the waiters parked on *ino* whose ranges overlap
        a released range (every waiter in wake-all mode).
        """
        held = self._writes.get(ino)
        if not held:
            return 0
        if not self._waiters.get(ino):
            # Nobody parked on this inode: drop the owner's locks without
            # collecting the freed ranges (both wake policies no-op).
            kept = [t for t in held if t[2] is not owner]
            if kept:
                self._writes[ino] = kept
            else:
                self._writes.pop(ino, None)
            return len(held) - len(kept)
        kept = []
        freed: List[Tuple[int, int]] = []
        for o, e, w in held:
            if w is owner:
                freed.append((o, e))
            else:
                kept.append((o, e, w))
        if kept:
            self._writes[ino] = kept
        else:
            self._writes.pop(ino, None)
        if freed:
            self._wake(ino, freed)
        return len(freed)

    def write_locks_held(self, ino: int) -> int:
        """Number of write locks currently held on *ino*."""
        return len(self._writes.get(ino, []))

    def reset(self) -> None:
        """Drop every lock and wake every waiter (server crash path).

        Woken waiters retry their acquisition; workers on a crashed
        server observe the crash epoch and abandon the request instead,
        so nobody is left parked forever on a lock that will never be
        released.
        """
        self._writes.clear()
        self._wake_all()


class MetadataLockTable(_WaiterMixin):
    """Per-inode mutex for metadata updates (§4.3)."""

    __slots__ = ("_held",)

    def __init__(self):
        super().__init__()
        self._held: Dict[int, object] = {}

    def try_lock(self, ino: int, owner: object) -> bool:
        """Acquire the inode's metadata mutex; False if another owner holds it."""
        current = self._held.get(ino)
        if current is None:
            self._held[ino] = owner
            if self._waiters:
                self._discard_waiter(ino, owner)
            return True
        return current is owner  # re-entrant for the same owner

    def unlock(self, ino: int, owner: object) -> None:
        """Release the mutex (must be the owner) and wake waiters.

        With range-indexed wakeups enabled only the head waiter wakes —
        a mutex has exactly one next holder, and the head deterministically
        wins the retry, so waking the rest is a no-op the wake-all mode
        performs and this mode skips.
        """
        if self._held.get(ino) is not owner:
            raise FSError(f"unlocking metadata lock not held by owner: ino={ino}")
        del self._held[ino]
        if _RANGE_WAKE_ENABLED:
            self._wake_head(ino)
        else:
            self._wake(ino)

    def unlock_if_held(self, ino: int, owner: object) -> bool:
        """Release the mutex only if *owner* holds it; True if released.

        Crash-tolerant variant of :meth:`unlock`: after a server crash
        wipes the table, the releasing worker may no longer be the
        recorded owner — that is not an error on this path.
        """
        if self._held.get(ino) is not owner:
            return False
        del self._held[ino]
        if _RANGE_WAKE_ENABLED:
            self._wake_head(ino)
        else:
            self._wake(ino)
        return True

    def reset(self) -> None:
        """Drop every mutex and wake every waiter (server crash path)."""
        self._held.clear()
        self._wake_all()

    def locked(self, ino: int) -> bool:
        """True if *ino*'s metadata mutex is held."""
        return ino in self._held

    def holders(self) -> Set[int]:
        """The inode numbers currently locked."""
        return set(self._held)
