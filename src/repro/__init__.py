"""ThemisIO reproduction: fine-grained policy-driven I/O sharing for
burst buffers (SC 2023), rebuilt on a discrete-event simulation substrate.

Public surface by layer:

- :mod:`repro.sim` — the DES kernel (engine, processes, resources, RNG).
- :mod:`repro.net` / :mod:`repro.ucx` — interconnect and UCX-like messaging.
- :mod:`repro.fs` — the distributed userspace file system.
- :mod:`repro.posix` — POSIX interception shim.
- :mod:`repro.core` — statistical tokens, policies, schedulers, baselines.
- :mod:`repro.bb` — the ThemisIO servers/clients/cluster.
- :mod:`repro.workloads` — benchmarks and application I/O models.
- :mod:`repro.metrics` — measurement utilities.
- :mod:`repro.harness` — experiment runner and per-figure experiments.

The most common entry points are re-exported here.
"""

from .bb import Client, Cluster, ClusterConfig, Server, ServerConfig
from .core import (FifoScheduler, GiftScheduler, JobInfo, JobStatusTable,
                   Policy, StatisticalTokenScheduler, TbfScheduler,
                   TokenAssignment)
from .harness import ExperimentConfig, JobRun, run_experiment
from .workloads import JobSpec

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "Server",
    "ServerConfig",
    "Client",
    "JobInfo",
    "JobStatusTable",
    "Policy",
    "TokenAssignment",
    "StatisticalTokenScheduler",
    "FifoScheduler",
    "GiftScheduler",
    "TbfScheduler",
    "ExperimentConfig",
    "JobRun",
    "run_experiment",
    "JobSpec",
    "__version__",
]
