"""Seeded, deterministic fault injection for cluster simulations.

The paper's §7 names crash recovery as ThemisIO's main open problem;
this package turns the recovery machinery (journal replay, log-segment
scans, retry/failover clients, degraded λ-sync) into *exercised* system
behaviour. A :class:`FaultPlan` is a declarative list of typed faults at
simulated times — server crash/restart, link degradation or partition,
per-message drop or delay, storage-op EIO, heartbeat loss, abrupt client
disconnect — and a :class:`FaultInjector` arms the plan against a live
:class:`~repro.bb.cluster.Cluster`.

Determinism invariant: all randomness (drop coins, EIO coins) comes from
named :class:`~repro.sim.rng.RngRegistry` streams keyed by the fault's
plan index, and every probabilistic decision is taken at a point fully
ordered by the DES (message send, request apply). Same seed + same plan
⇒ bit-identical traces.
"""

from .injector import FaultInjector
from .plan import (ClientDisconnect, FaultPlan, HeartbeatLoss, LinkFault,
                   ServerCrash, StorageFault)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "ServerCrash",
    "LinkFault",
    "HeartbeatLoss",
    "StorageFault",
    "ClientDisconnect",
]
