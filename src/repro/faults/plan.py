"""Typed fault descriptions and the plan that schedules them.

Every fault is a frozen dataclass — a pure description, with no behaviour
— so plans are hashable, comparable, printable, and trivially
serialisable. The :class:`~repro.faults.injector.FaultInjector` gives
them effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError

__all__ = ["ServerCrash", "LinkFault", "HeartbeatLoss", "StorageFault",
           "ClientDisconnect", "FaultPlan", "Fault"]


def _check_window(start: float, stop: float, what: str) -> None:
    if start < 0 or stop < start:
        raise ConfigError(f"{what}: invalid window [{start}, {stop})")


def _check_prob(p: float, what: str) -> None:
    if not 0.0 <= p <= 1.0:
        raise ConfigError(f"{what}: probability {p} outside [0, 1]")


@dataclass(frozen=True)
class ServerCrash:
    """Fail-stop *server* at time *at*; optionally restart later.

    With ``restart_at`` set the server recovers at that time (journal
    replay + log-segment scan when the cluster is configured with
    ``journal=True`` / ``storage_backend="log"``) and rejoins the
    cluster. Without it, the server stays dead for the rest of the run.
    """

    server: str
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"crash time must be >= 0: {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigError(
                f"restart_at {self.restart_at} must be after crash {self.at}")

    @property
    def start(self) -> float:
        """When the fault takes effect (plan ordering key)."""
        return self.at


@dataclass(frozen=True)
class LinkFault:
    """Degrade (or partition) fabric links during ``[start, stop)``.

    ``a``/``b`` name the affected endpoints: both None = every message,
    only ``a`` = every message to or from ``a``, both set = messages
    between ``a`` and ``b`` in either direction. Each matching message
    is dropped with ``drop_prob`` (1.0 = a full partition), otherwise
    delivered ``delay`` seconds late when ``delay > 0``.
    """

    start: float
    stop: float
    a: Optional[str] = None
    b: Optional[str] = None
    drop_prob: float = 0.0
    delay: float = 0.0

    def __post_init__(self):
        _check_window(self.start, self.stop, "LinkFault")
        _check_prob(self.drop_prob, "LinkFault.drop_prob")
        if self.delay < 0:
            raise ConfigError(f"LinkFault.delay must be >= 0: {self.delay}")
        if self.drop_prob == 0.0 and self.delay == 0.0:
            raise ConfigError("LinkFault with no drop_prob and no delay "
                              "does nothing")
        if self.a is None and self.b is not None:
            raise ConfigError("LinkFault: set `a` before `b`")

    def matches(self, src: str, dst: str) -> bool:
        """True if a message ``src -> dst`` crosses this fault's links."""
        if self.a is None:
            return True
        if self.b is None:
            return self.a in (src, dst)
        return {src, dst} == {self.a, self.b}


@dataclass(frozen=True)
class HeartbeatLoss:
    """Suppress heartbeat messages during ``[start, stop)``.

    ``client_id`` limits the loss to one client's beats; None silences
    every client. Servers then expire the affected jobs via the monitor
    (DESIGN §6: dropped heartbeats → inactivation + re-tokenisation).
    """

    start: float
    stop: float
    client_id: Optional[str] = None

    def __post_init__(self):
        _check_window(self.start, self.stop, "HeartbeatLoss")


@dataclass(frozen=True)
class StorageFault:
    """Fail storage ops on *server* with EIO during ``[start, stop)``.

    Each request applied in the window fails independently with
    ``error_rate`` (1.0 = every op). The server replies ``ok=False``;
    fault-tolerant clients retry with backoff.
    """

    server: str
    start: float
    stop: float
    error_rate: float = 1.0

    def __post_init__(self):
        _check_window(self.start, self.stop, "StorageFault")
        _check_prob(self.error_rate, "StorageFault.error_rate")
        if self.error_rate == 0.0:
            raise ConfigError("StorageFault with error_rate 0 does nothing")


@dataclass(frozen=True)
class ClientDisconnect:
    """Abruptly disconnect *client_id* at time *at* (no goodbye).

    Servers notice through heartbeat expiry and destroy the client's
    worker mappings (DESIGN §6: client exit cleanup, ungraceful half).
    """

    client_id: str
    at: float

    def __post_init__(self):
        if self.at < 0:
            raise ConfigError(f"disconnect time must be >= 0: {self.at}")

    @property
    def start(self) -> float:
        """When the fault takes effect (plan ordering key)."""
        return self.at


#: Any schedulable fault type.
Fault = Union[ServerCrash, LinkFault, HeartbeatLoss, StorageFault,
              ClientDisconnect]

_FAULT_TYPES = (ServerCrash, LinkFault, HeartbeatLoss, StorageFault,
                ClientDisconnect)


@dataclass(frozen=True, init=False)
class FaultPlan:
    """An ordered set of faults to inject into one run.

    Faults are sorted by their effect time (then plan position) at
    construction so a plan's description — and the injector's rng stream
    numbering — does not depend on authoring order.
    """

    faults: tuple

    def __init__(self, faults: Sequence[Fault]):
        items = list(faults)
        for f in items:
            if not isinstance(f, _FAULT_TYPES):
                raise ConfigError(f"not a fault: {f!r}")
        items.sort(key=lambda f: getattr(f, "start", 0.0))
        # A server cannot crash again before it restarted: overlapping
        # down-windows for the same server describe an impossible
        # schedule (the injector would crash an already-dead server).
        windows: dict = {}
        for f in items:
            if not isinstance(f, ServerCrash):
                continue
            stop = (f.restart_at if f.restart_at is not None
                    else float("inf"))
            for lo, hi in windows.get(f.server, []):
                if f.at < hi and lo < stop:
                    raise ConfigError(
                        f"overlapping crash windows for {f.server!r}: "
                        f"[{lo}, {hi}) and [{f.at}, {stop})")
            windows.setdefault(f.server, []).append((f.at, stop))
        object.__setattr__(self, "faults", tuple(items))

    def __len__(self) -> int:
        return len(self.faults)

    def of_type(self, fault_type) -> List[Fault]:
        """The plan's faults of one type, in schedule order."""
        return [f for f in self.faults if isinstance(f, fault_type)]

    def max_simultaneous_crashes(self) -> int:
        """Largest number of servers down at the same instant under
        this plan (restart-less crashes stay down forever)."""
        crashes = self.of_type(ServerCrash)
        worst = 0
        for f in crashes:
            down = sum(1 for g in crashes
                       if g.at <= f.at
                       and (g.restart_at is None or g.restart_at > f.at))
            worst = max(worst, down)
        return worst

    def describe(self, erasure: Optional[Tuple[int, int]] = None) -> str:
        """One line per fault, in schedule order.

        With ``erasure=(k, n)`` the description is checked against the
        code's loss tolerance: a plan whose simultaneous crashes exceed
        ``n - k`` gets a WARNING line — it is unsurvivable (data loss)
        for any file placed on the crashed servers.
        """
        lines = [f"t={getattr(f, 'start', 0.0):9.3f}  {f!r}"
                 for f in self.faults]
        if erasure is not None:
            k, n = erasure
            worst = self.max_simultaneous_crashes()
            if worst > n - k:
                lines.append(
                    f"WARNING: up to {worst} simultaneous crashes exceed "
                    f"the erasure tolerance n-k={n - k} (k={k}, n={n}); "
                    f"this plan is unsurvivable — expect data loss")
        return "\n".join(lines)
