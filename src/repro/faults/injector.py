"""Arms a :class:`~repro.faults.plan.FaultPlan` against a live cluster.

The injector translates declarative faults into mechanism:

- :class:`ServerCrash` → ``engine.call_at`` callbacks invoking
  :meth:`Server.crash` / :meth:`Server.restart`;
- :class:`LinkFault` / :class:`HeartbeatLoss` → one composed fabric
  fault filter evaluated per message at send time;
- :class:`StorageFault` → a per-server ``storage_fault`` hook evaluated
  per request inside the I/O worker;
- :class:`ClientDisconnect` → ``engine.call_at`` calling
  :meth:`Client.disconnect`.

Each probabilistic fault draws from its own named rng stream
(``faults.link.{i}`` / ``faults.storage.{i}``, *i* = position in the
sorted plan), so adding one fault never perturbs another's coin flips
and identical (seed, plan) pairs replay bit-identically.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..errors import ConfigError, FSError
from ..net.fabric import DROP, FaultVerdict
from ..net.message import Message
from .plan import (ClientDisconnect, FaultPlan, HeartbeatLoss, LinkFault,
                   ServerCrash, StorageFault)

if TYPE_CHECKING:  # pragma: no cover
    from ..bb.cluster import Cluster

__all__ = ["FaultInjector"]

#: RPC request tag (mirrors repro.ucx.rpc.REQ_TAG without the import
#: cycle risk; asserted equal in tests).
_REQ_TAG = "rpc.req"


class FaultInjector:
    """Binds a fault plan to a cluster; :meth:`arm` makes it live."""

    def __init__(self, cluster: "Cluster", plan: FaultPlan):
        self.cluster = cluster
        self.plan = plan
        self.stats = cluster.fault_stats
        self.armed = False
        self._link_faults: List[Tuple[LinkFault, object]] = []
        self._hb_faults: List[HeartbeatLoss] = []

    # ------------------------------------------------------------------ arming
    def arm(self) -> None:
        """Install every fault (idempotent is *not* supported: arm once)."""
        if self.armed:
            raise ConfigError("fault plan already armed")
        self.armed = True
        cluster = self.cluster
        engine = cluster.engine

        storage: dict = {}  # server -> [(fault, rng)]
        for i, fault in enumerate(self.plan.faults):
            if isinstance(fault, ServerCrash):
                if fault.server not in cluster.servers:
                    raise ConfigError(f"unknown server {fault.server!r}")
                server = cluster.servers[fault.server]
                engine.call_at(fault.at, server.crash)
                if fault.restart_at is not None:
                    engine.call_at(fault.restart_at, server.restart)
            elif isinstance(fault, LinkFault):
                rng = cluster.rng.stream(f"faults.link.{i}")
                self._link_faults.append((fault, rng))
            elif isinstance(fault, HeartbeatLoss):
                self._hb_faults.append(fault)
            elif isinstance(fault, StorageFault):
                if fault.server not in cluster.servers:
                    raise ConfigError(f"unknown server {fault.server!r}")
                rng = cluster.rng.stream(f"faults.storage.{i}")
                storage.setdefault(fault.server, []).append((fault, rng))
            elif isinstance(fault, ClientDisconnect):
                engine.call_at(fault.at, self._make_disconnect(fault))

        if self._link_faults or self._hb_faults:
            cluster.fabric.set_fault_filter(self._filter)
        for name, entries in storage.items():
            cluster.servers[name].storage_fault = self._make_storage_hook(
                entries)

    # ------------------------------------------------------------- mechanisms
    def _make_disconnect(self, fault: ClientDisconnect):
        def fire() -> None:
            client = self.cluster.clients.get(fault.client_id)
            if client is not None and not client.closed:
                client.disconnect()
        return fire

    def _make_storage_hook(self, entries):
        def hook(request, now: float) -> Optional[Exception]:
            for fault, rng in entries:
                if not fault.start <= now < fault.stop:
                    continue
                if (fault.error_rate >= 1.0
                        or float(rng.random()) < fault.error_rate):
                    return FSError(
                        f"injected EIO on {fault.server} ({request.op.value} "
                        f"{request.path})")
            return None
        return hook

    def _filter(self, message: Message) -> FaultVerdict:
        """Per-message verdict: heartbeat loss first, then link faults.

        Evaluated once per send in send order; the first matching
        dropping fault wins, otherwise the first matching delay applies.
        """
        now = self.cluster.engine.now
        if self._hb_faults and self._is_heartbeat(message):
            for fault in self._hb_faults:
                if not fault.start <= now < fault.stop:
                    continue
                body = message.payload.get("body") or {}
                if (fault.client_id is None
                        or body.get("client_id") == fault.client_id):
                    self.stats.heartbeats_dropped += 1
                    return DROP
        delay: Optional[float] = None
        for fault, rng in self._link_faults:
            if not fault.start <= now < fault.stop:
                continue
            if not fault.matches(message.src, message.dst):
                continue
            if fault.drop_prob > 0 and (
                    fault.drop_prob >= 1.0
                    or float(rng.random()) < fault.drop_prob):
                self.stats.messages_dropped += 1
                return DROP
            if delay is None and fault.delay > 0:
                delay = fault.delay
        if delay is not None:
            self.stats.messages_delayed += 1
        return delay

    @staticmethod
    def _is_heartbeat(message: Message) -> bool:
        """True for RPC heartbeat requests (control-plane beats only)."""
        return (message.tag == _REQ_TAG
                and isinstance(message.payload, dict)
                and message.payload.get("op") == "heartbeat")
