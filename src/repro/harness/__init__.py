"""Experiment harness: configs, runner, reporting, per-figure
experiments, and the content-addressed sweep workspace."""

from .config import ExperimentConfig, JobRun
from .experiments import (BaselineComparison, CompositeResult,
                          InterferenceResult, LambdaResult, ScalingResult,
                          SharingResult, fig01_interference, fig07_scaling,
                          fig08_primitive, fig08c_user_fair,
                          fig09_user_then_size, fig10_group_user_size,
                          fig12_baselines, fig13_applications, fig14_lambda,
                          run_sharing_experiment)
from .report import pct, ratio, series_text, sparkline, table
from .runner import ExperimentResult, JobOutcome, run_experiment
from .sweep import BUILTIN_GRIDS, ParallelRunner, SweepRun, SweepSpec
from .workspace import Workspace, code_rev, point_key

__all__ = [
    "ExperimentConfig",
    "JobRun",
    "run_experiment",
    "ExperimentResult",
    "JobOutcome",
    "run_sharing_experiment",
    "SharingResult",
    "CompositeResult",
    "ScalingResult",
    "BaselineComparison",
    "InterferenceResult",
    "LambdaResult",
    "fig01_interference",
    "fig07_scaling",
    "fig08_primitive",
    "fig08c_user_fair",
    "fig09_user_then_size",
    "fig10_group_user_size",
    "fig12_baselines",
    "fig13_applications",
    "fig14_lambda",
    "table",
    "series_text",
    "sparkline",
    "pct",
    "ratio",
    "Workspace",
    "code_rev",
    "point_key",
    "SweepSpec",
    "SweepRun",
    "ParallelRunner",
    "BUILTIN_GRIDS",
]
