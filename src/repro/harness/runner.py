"""Experiment runner: cluster assembly, job launch, result collection."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..bb.cluster import Cluster
from ..errors import ConfigError
from ..metrics.sampler import ThroughputSampler
from ..metrics.stats import median_nonzero, stddev_nonzero
from .config import ExperimentConfig, JobRun

__all__ = ["JobOutcome", "ExperimentResult", "run_experiment"]


@dataclass
class JobOutcome:
    """What happened to one job."""

    job_id: int
    start: float
    end: Optional[float]       # None if still running at max_time
    streams: int
    bytes_moved: int = 0

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def time_to_solution(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start


class ExperimentResult:
    """Collected measurements of one experiment run."""

    def __init__(self, config: ExperimentConfig, cluster: Cluster,
                 outcomes: Dict[int, JobOutcome]):
        self.config = config
        self.cluster = cluster
        self.outcomes = outcomes

    @property
    def sampler(self) -> ThroughputSampler:
        return self.cluster.sampler

    @property
    def end_time(self) -> float:
        return self.cluster.engine.now

    # ---------------------------------------------------------------- series
    def series(self, job_id: Optional[int] = None
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Binned throughput series (all jobs, or one job)."""
        return self.sampler.series(job_id, self.config.sample_interval,
                                   start=0.0, end=self.end_time)

    def median_throughput(self, job_id: Optional[int] = None,
                          t0: float = 0.0,
                          t1: Optional[float] = None) -> float:
        """Median of non-zero per-interval throughput over [t0, t1)."""
        times, values = self.series(job_id)
        t1 = t1 if t1 is not None else self.end_time
        mask = (times >= t0) & (times < t1)
        return median_nonzero(values[mask])

    def stddev_throughput(self, job_id: Optional[int] = None,
                          t0: float = 0.0,
                          t1: Optional[float] = None) -> float:
        """Stddev of non-zero per-interval throughput over [t0, t1)."""
        times, values = self.series(job_id)
        t1 = t1 if t1 is not None else self.end_time
        mask = (times >= t0) & (times < t1)
        return stddev_nonzero(values[mask])

    def window_throughput(self, t0: float, t1: float,
                          job_id: Optional[int] = None) -> float:
        """Mean bytes/second over [t0, t1)."""
        return self.sampler.window_throughput(t0, t1, job_id)

    def time_to_solution(self, job_id: int) -> float:
        """The job's start-to-finish time (raises if it never finished)."""
        outcome = self.outcomes[job_id]
        if outcome.end is None:
            raise ConfigError(
                f"job {job_id} did not finish by max_time={self.config.max_time}")
        return outcome.time_to_solution

    def to_dict(self) -> dict:
        """JSON-ready export: config summary, per-job outcomes and series.

        Everything a plotting script needs to redraw the paper's figures
        from a run (`json.dump(result.to_dict(), fh)`).
        """
        per_job = {}
        for job_id, outcome in self.outcomes.items():
            times, rates = self.series(job_id)
            per_job[str(job_id)] = {
                "start": outcome.start,
                "end": outcome.end,
                "time_to_solution": outcome.time_to_solution,
                "streams": outcome.streams,
                "bytes_moved": outcome.bytes_moved,
                "series_times": [float(t) for t in times],
                "series_bytes_per_sec": [float(r) for r in rates],
            }
        return {
            "policy": self.config.cluster.policy,
            "n_servers": self.config.cluster.n_servers,
            "seed": self.config.cluster.seed,
            "sample_interval": self.config.sample_interval,
            "end_time": self.end_time,
            "total_bytes": self.sampler.total_bytes(),
            "jobs": per_job,
        }


def run_experiment(config: ExperimentConfig,
                   on_cluster: Optional[Callable[[Cluster], None]] = None
                   ) -> ExperimentResult:
    """Build the cluster, run every job, return the measurements.

    *on_cluster* is called with the freshly built cluster before any
    simulated time passes — the hook point for arming a
    :class:`~repro.faults.FaultInjector` or other instrumentation.
    """
    cluster = Cluster(config.cluster)
    if on_cluster is not None:
        on_cluster(cluster)
    engine = cluster.engine
    cluster.fs.makedirs(config.base_dir)
    outcomes: Dict[int, JobOutcome] = {}
    finite_jobs = {run.spec.job_id for run in config.jobs if run.stop is None}

    def maybe_stop():
        if (config.stop_when_jobs_finish and finite_jobs
                and all(outcomes[j].end is not None for j in finite_jobs)):
            engine.request_stop()

    def launch(run: JobRun):
        prefix = f"{config.base_dir}/job{run.spec.job_id}"
        cluster.fs.makedirs(prefix)

        def job_proc():
            if run.start > 0:
                yield engine.timeout(run.start)
            info = run.spec.info()
            clients = [cluster.add_client(
                info, client_id=f"j{run.spec.job_id}n{i}")
                for i in range(run.n_clients)]
            streams = []
            for c_idx, client in enumerate(clients):
                for s_idx in range(run.workload.streams_per_node):
                    rng = cluster.rng.stream(
                        f"wl.j{run.spec.job_id}.c{c_idx}.s{s_idx}")
                    streams.append(engine.process(run.workload.run_stream(
                        engine, client, rng, prefix, s_idx, run.stop)))
            outcome = outcomes[run.spec.job_id]
            outcome.streams = len(streams)
            yield engine.all_of(streams)
            outcome.end = engine.now
            for client in clients:
                yield from client.goodbye()
            maybe_stop()

        outcomes[run.spec.job_id] = JobOutcome(
            job_id=run.spec.job_id, start=run.start, end=None, streams=0)
        engine.process(job_proc())

    for run in config.jobs:
        launch(run)
    engine.run(until=config.max_time)

    for run in config.jobs:
        outcome = outcomes[run.spec.job_id]
        outcome.bytes_moved = cluster.sampler.total_bytes(run.spec.job_id)
    return ExperimentResult(config, cluster, outcomes)
