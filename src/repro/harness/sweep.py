"""Declarative sweeps: spec expansion, caching, and parallel fan-out.

A sweep is a declarative grid — a base config plus per-axis value lists
— expanded into fully-resolved *points*. Each point is keyed into the
content-addressed :class:`~repro.harness.workspace.Workspace`;
:class:`ParallelRunner` partitions the points into cache hits (read
back from the store) and misses (computed, optionally fanned out over
``multiprocessing`` workers) and returns every result in spec order.

Determinism: serial == parallel == replay
-----------------------------------------
The bit-identity contract (same seed ⇒ same trace, DESIGN.md §9) holds
across all three execution modes because points share nothing:

1. **No shared sim state.** Every point function builds its own
   cluster/scheduler world from its config; all randomness flows from
   the config's seed through that world's own ``RngRegistry``. Nothing
   simulated lives at module scope, so there is no state a fork could
   duplicate or a worker could race on (``repro.lint`` rule SIM004
   polices the worker boundary).
2. **Pure seed derivation.** Replica expansion derives per-replica
   seeds as ``RngRegistry(base_seed).spawn(f"sweep.replica.{i}").seed``
   — a pure function of (base seed, replica index), independent of
   execution order, worker count, or host.
3. **Order-independent assembly.** Workers return ``(key, result)``
   pairs in completion order; the runner reassembles them by key into
   the deterministic spec order, so ``imap_unordered`` scheduling noise
   never reaches the results document.
4. **Canonical persistence.** Results are stored and digested as
   canonical JSON, so a cache replay returns byte-identical documents.

Workers use the ``spawn`` start method: each child imports a fresh
interpreter instead of inheriting the parent's (possibly toggled or
warmed) module state, which keeps worker behaviour identical to a
fresh serial process.
"""

from __future__ import annotations

import importlib
import json
import math
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from .workspace import Workspace, code_rev, content_digest, point_key

__all__ = ["SweepSpec", "PointOutcome", "SweepRun", "ParallelRunner",
           "POINT_KINDS", "BUILTIN_GRIDS", "load_spec",
           "resolve_point_kind", "run_point", "derive_replica_seed",
           "sweep_doc_from_workspace"]

#: point kind -> (module, attribute) of the function computing one point.
#: Resolved lazily so importing this module stays light and the registry
#: is identical in pool workers (spawned children re-import and see the
#: same mapping).
POINT_KINDS: Dict[str, Tuple[str, str]] = {
    "sharing": ("repro.harness.experiments", "sharing_cell"),
    "fig07_cell": ("repro.harness.experiments", "fig07_cell"),
    "fig14_cell": ("repro.harness.experiments", "fig14_cell"),
    "repair_cell": ("repro.harness.experiments", "repair_cell"),
    "bench_scale": ("repro.bench", "bench_scale_cell"),
    "bench_lambda_delta": ("repro.bench", "bench_lambda_delta_cell"),
    "bench_sync": ("repro.bench", "bench_sync_cell"),
    "bench_timer_churn": ("repro.bench", "bench_timer_churn_cell"),
}


def resolve_point_kind(kind: str) -> Callable[[Dict[str, Any]],
                                              Dict[str, Any]]:
    """The point function registered under *kind* (lazily imported)."""
    try:
        module_name, attr = POINT_KINDS[kind]
    except KeyError:
        raise ReproError(
            f"unknown point kind {kind!r}; known: "
            f"{', '.join(sorted(POINT_KINDS))}") from None
    return getattr(importlib.import_module(module_name), attr)


def run_point(kind: str, config: Dict[str, Any]) -> Dict[str, Any]:
    """Compute one point: resolve *kind* and call it on a config copy."""
    fn = resolve_point_kind(kind)
    return fn(dict(config))


def _pool_worker(task: Tuple[str, str, Dict[str, Any]]
                 ) -> Tuple[str, Dict[str, Any], float]:
    """Top-level worker body: ``(key, kind, config) -> (key, result,
    wall_s)``.

    Must stay a module-level function — ``spawn`` workers import it by
    qualified name; closures and bound methods cannot cross the process
    boundary (and would drag parent state with them if they could).
    """
    key, kind, config = task
    t0 = time.perf_counter()
    result = run_point(kind, config)
    return key, result, time.perf_counter() - t0


def derive_replica_seed(base_seed: int, replica: int) -> int:
    """The sim seed of replica *replica* of a point seeded *base_seed*.

    Pure and order-independent: derived through
    :meth:`~repro.sim.rng.RngRegistry.spawn`, so replica streams are
    decorrelated from the base seed and from each other no matter which
    worker computes them or in what order.
    """
    from ..sim.rng import RngRegistry
    return RngRegistry(int(base_seed)).spawn(
        f"sweep.replica.{int(replica)}").seed


# ===================================================================== spec
@dataclass
class SweepSpec:
    """A declarative sweep: base config x axis grid (x replicas).

    ``points()`` expands the cartesian product deterministically: axis
    names in sorted order, each axis's values in listed order. With
    ``replicas > 1`` every grid cell is repeated with derived seeds
    (see :func:`derive_replica_seed`); replica 0 keeps the declared
    seed so a 1-replica sweep is unchanged by the feature.
    """

    name: str
    kind: str
    base: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    replicas: int = 1

    def points(self) -> List[Dict[str, Any]]:
        """The fully-resolved point configs, in deterministic order."""
        configs = [dict(self.base)]
        for axis in sorted(self.axes):
            values = self.axes[axis]
            if not isinstance(values, (list, tuple)) or not values:
                raise ReproError(
                    f"sweep {self.name!r}: axis {axis!r} must be a "
                    "non-empty list of values")
            configs = [dict(config, **{axis: value})
                       for config in configs for value in values]
        if self.replicas <= 1:
            return configs
        expanded = []
        for config in configs:
            base_seed = int(config.get("seed", 0))
            for i in range(self.replicas):
                replica = dict(config)
                replica["replica"] = i
                if i > 0:
                    replica["seed"] = derive_replica_seed(base_seed, i)
                expanded.append(replica)
        return expanded

    def to_doc(self) -> Dict[str, Any]:
        """JSON-able form (inverse of :func:`spec_from_doc`)."""
        return {"name": self.name, "kind": self.kind, "base": self.base,
                "axes": self.axes, "replicas": self.replicas}


def spec_from_doc(doc: Dict[str, Any]) -> SweepSpec:
    """Build a :class:`SweepSpec` from a parsed JSON document."""
    if not isinstance(doc, dict) or "kind" not in doc:
        raise ReproError("sweep spec must be a JSON object with a 'kind'")
    return SweepSpec(
        name=str(doc.get("name", "unnamed")),
        kind=str(doc["kind"]),
        base=dict(doc.get("base", {})),
        axes={str(k): list(v) for k, v in dict(doc.get("axes", {})).items()},
        replicas=int(doc.get("replicas", 1)))


def load_spec(path: str) -> SweepSpec:
    """Load a sweep spec from a JSON file."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read sweep spec {path!r}: {exc}") from exc
    return spec_from_doc(doc)


#: Named grids runnable without a spec file: ``repro sweep --grid NAME``.
BUILTIN_GRIDS: Dict[str, SweepSpec] = {
    # 8 short two-job sharing runs: the cold/warm timing grid CI runs
    # twice and EXPERIMENTS.md reports on.
    "quick": SweepSpec(
        name="quick", kind="sharing",
        base={"nodes1": 4, "scale": 0.05, "n_servers": 1},
        axes={"policy": ["job-fair", "size-fair"],
              "seed": [0, 1],
              "nodes2": [1, 2]}),
    # The Fig. 7 scaling ladder, one point per (policy, mode, N) cell.
    "fig07": SweepSpec(
        name="fig07", kind="fig07_cell",
        base={"duration": 3.0, "block": 8 * 1024 * 1024, "seed": 0},
        axes={"policy": ["fifo", "job-fair"],
              "mode": ["write", "read"],
              "n_servers": [1, 2, 4, 8]}),
    # The Fig. 14 λ ladder.
    "fig14": SweepSpec(
        name="fig14", kind="fig14_cell",
        base={"seed": 0},
        axes={"lam": [0.010, 0.050, 0.200, 0.500]}),
    # λ-sync server-count ladder, flat vs aggregation tree (the
    # committed SWEEP artifact runs the full N=16→1024 version via
    # `repro bench --scale-sweep`; this grid is the spec-file form).
    "sync_ladder": SweepSpec(
        name="sync_ladder", kind="bench_sync",
        base={"fanout": 8, "epochs": 6},
        axes={"mode": ["flat", "tree"],
              "n_servers": [16, 64, 256]}),
}


# ==================================================================== runner
@dataclass
class PointOutcome:
    """One expanded point after a run: its key, result, and provenance."""

    key: str
    kind: str
    config: Dict[str, Any]
    result: Dict[str, Any]
    cached: bool
    wall_s: float


@dataclass
class SweepRun:
    """Everything one :class:`ParallelRunner` invocation produced."""

    points: List[PointOutcome]
    rev: str
    jobs: int
    wall_s: float

    @property
    def hits(self) -> int:
        """Points served from the workspace store."""
        return sum(1 for p in self.points if p.cached)

    @property
    def misses(self) -> int:
        """Points that had to be computed this run."""
        return len(self.points) - self.hits

    @property
    def hit_rate(self) -> float:
        """Fraction of points served from the store (0 when empty)."""
        return self.hits / len(self.points) if self.points else 0.0

    def serial_estimate_s(self) -> float:
        """Estimated serial wall-clock: the sum of every point's compute
        time (cache hits contribute the wall recorded when they were
        first computed)."""
        return math.fsum(p.wall_s for p in self.points)

    def speedup(self) -> float:
        """Serial-estimate / actual wall — the combined caching +
        parallelism win of this run (1.0 = no faster than serial)."""
        if self.wall_s <= 0:
            return 0.0
        return self.serial_estimate_s() / self.wall_s

    def results_doc(self) -> Dict[str, Any]:
        """The canonical results document: every point's kind, config
        and result in spec order. Pure content — no timings, hostnames,
        store keys, or hit/miss provenance — so serial, parallel, and
        replayed runs of the same spec produce byte-identical documents
        (store keys are rev-scoped and would needlessly split the
        digest across revisions of identical results)."""
        return {"points": [{"kind": p.kind, "config": p.config,
                            "result": p.result}
                           for p in self.points]}

    def digest(self) -> str:
        """Content digest of :meth:`results_doc` (the identity the CI
        sweep-smoke job asserts stable across passes)."""
        return content_digest(self.results_doc())

    def to_summary(self) -> Dict[str, Any]:
        """JSON-able run summary (``repro sweep --json``)."""
        return {
            "rev": self.rev,
            "jobs": self.jobs,
            "points": len(self.points),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "wall_s": round(self.wall_s, 6),
            "serial_estimate_s": round(self.serial_estimate_s(), 6),
            "speedup": round(self.speedup(), 2),
            "digest": self.digest(),
        }

    def summary(self) -> str:
        """Human-readable hits/misses/speedup table."""
        lines = [
            f"points {len(self.points)}  hits {self.hits}  "
            f"misses {self.misses}  hit-rate {self.hit_rate:.0%}",
            f"wall {self.wall_s:.2f}s  serial-estimate "
            f"{self.serial_estimate_s():.2f}s  speedup "
            f"{self.speedup():.2f}x  (jobs={self.jobs})",
            f"digest {self.digest()}  rev {self.rev}",
        ]
        return "\n".join(lines)


class ParallelRunner:
    """Expands sweeps into points, consults the workspace, fans out.

    With ``jobs <= 1`` (or a single pending point) misses are computed
    in-process; otherwise they are distributed over a ``spawn`` pool of
    ``min(jobs, misses)`` workers. Either way the returned
    :class:`SweepRun` lists outcomes in spec order, and — because points
    are self-contained and seeds are derived purely (module docstring) —
    with results bit-identical across the two modes.
    """

    def __init__(self, workspace: Optional[Workspace] = None, jobs: int = 1,
                 rev: Optional[str] = None):
        self.workspace = workspace
        self.jobs = max(1, int(jobs))
        if rev is not None:
            self.rev = rev
        elif workspace is not None:
            self.rev = code_rev()
        else:
            # No store, so the rev only namespaces in-memory keys.
            self.rev = "local"

    def run_spec(self, spec: SweepSpec, rerun: bool = False) -> SweepRun:
        """Expand *spec* and run every point (see :meth:`run_points`)."""
        return self.run_points([(spec.kind, config)
                                for config in spec.points()], rerun=rerun)

    def run_points(self, points: Sequence[Tuple[str, Dict[str, Any]]],
                   rerun: bool = False) -> SweepRun:
        """Run ``(kind, config)`` *points*; returns outcomes in order.

        Each point is keyed; with a workspace attached, stored results
        are cache hits (unless *rerun* first invalidates them) and fresh
        results are written back. Duplicate keys are computed once.
        """
        t_start = time.perf_counter()
        keyed: List[Tuple[str, str, Dict[str, Any]]] = []
        outcomes: Dict[str, PointOutcome] = {}
        pending: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for kind, config in points:
            if kind not in POINT_KINDS:
                raise ReproError(
                    f"unknown point kind {kind!r}; known: "
                    f"{', '.join(sorted(POINT_KINDS))}")
            key = point_key(kind, config, self.rev)
            keyed.append((key, kind, config))
            if key in outcomes or key in pending:
                continue
            blob = None
            if self.workspace is not None:
                if rerun:
                    self.workspace.discard(key)
                else:
                    blob = self.workspace.get(key)
            if blob is not None:
                outcomes[key] = PointOutcome(
                    key=key, kind=kind, config=dict(config),
                    result=blob["result"], cached=True,
                    wall_s=float(blob["meta"].get("wall_s", 0.0)))
            else:
                pending[key] = (kind, dict(config))
        if pending:
            tasks = [(key, kind, config)
                     for key, (kind, config) in pending.items()]
            if self.jobs <= 1 or len(tasks) == 1:
                raw = [_pool_worker(task) for task in tasks]
            else:
                ctx = multiprocessing.get_context("spawn")
                with ctx.Pool(processes=min(self.jobs, len(tasks))) as pool:
                    raw = list(pool.imap_unordered(_pool_worker, tasks,
                                                   chunksize=1))
            for key, result, wall in raw:
                kind, config = pending[key]
                outcomes[key] = PointOutcome(
                    key=key, kind=kind, config=config, result=result,
                    cached=False, wall_s=wall)
                if self.workspace is not None:
                    self.workspace.put(key, kind, config, result,
                                       self.rev, wall)
            if self.workspace is not None:
                self.workspace.flush()
        ordered = [outcomes[key] for key, _kind, _config in keyed]
        return SweepRun(points=ordered, rev=self.rev, jobs=self.jobs,
                        wall_s=time.perf_counter() - t_start)


# ================================================================ artifacts
def sweep_doc_from_workspace(workspace: Workspace,
                             rev: Optional[str] = None) -> Dict[str, Any]:
    """Assemble a ``SWEEP_<rev>.json``-shaped document from the store.

    Collects every ``bench_scale`` / ``bench_lambda_delta`` blob at
    *rev* (default: the current code revision) and groups rows by
    kernel, sorted by population — the shape
    ``scripts/bench_compare.py`` diffs. Returns ``{"rev", "sweep"}``;
    the sweep map is empty when the store holds no bench points at that
    revision.
    """
    rev = rev if rev is not None else code_rev()
    sweep: Dict[str, List[Dict[str, Any]]] = {}
    for blob in workspace.blobs(kind="bench_scale", rev=rev):
        kernel = str(blob["config"].get("kernel", "unknown"))
        sweep.setdefault(kernel, []).append(dict(blob["result"]))
    for blob in workspace.blobs(kind="bench_lambda_delta", rev=rev):
        sweep.setdefault("lambda_sync_delta", []).append(
            dict(blob["result"]))
    for rows in sweep.values():
        rows.sort(key=lambda row: row.get("population", 0))
    return {"rev": rev, "sweep": sweep}
