"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..bb.cluster import ClusterConfig
from ..errors import ConfigError
from ..workloads.base import JobSpec, Workload

__all__ = ["JobRun", "ExperimentConfig"]


@dataclass
class JobRun:
    """One job in an experiment: who it is, what it runs, when.

    ``client_nodes`` bounds the number of *simulated* client endpoints;
    policies still see ``spec.nodes`` (a 64-node job can be driven by 4
    aggregated clients without changing its fair share).
    """

    spec: JobSpec
    workload: Workload
    start: float = 0.0
    stop: Optional[float] = None     # absolute stop for open-ended streams
    client_nodes: Optional[int] = None

    def __post_init__(self):
        if self.start < 0:
            raise ConfigError(f"start must be >= 0: {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ConfigError("stop must be after start")

    @property
    def n_clients(self) -> int:
        if self.client_nodes is not None:
            if self.client_nodes < 1:
                raise ConfigError("client_nodes must be >= 1")
            return self.client_nodes
        return min(self.spec.nodes, 8)


@dataclass
class ExperimentConfig:
    """A full experiment: a cluster plus the jobs run against it."""

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    jobs: List[JobRun] = field(default_factory=list)
    max_time: float = 60.0
    base_dir: str = "/fs"
    sample_interval: float = 1.0
    #: end the simulation as soon as every run-to-completion job (one
    #: with ``stop=None``) has finished, instead of simulating open-ended
    #: background jobs out to max_time.
    stop_when_jobs_finish: bool = True

    def __post_init__(self):
        if self.max_time <= 0:
            raise ConfigError("max_time must be positive")
        if not self.jobs:
            raise ConfigError("experiment needs at least one job")
        ids = [run.spec.job_id for run in self.jobs]
        if len(set(ids)) != len(ids):
            raise ConfigError(f"duplicate job ids: {ids}")
