"""Plain-text reporting: aligned tables and throughput series.

Benchmarks print the same rows/series the paper's figures show; these
helpers keep that output consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..units import fmt_bw

__all__ = ["table", "series_text", "sparkline", "pct", "ratio"]

_SPARK_CHARS = " ▁▂▃▄▅▆▇█"


def table(headers: Sequence[str], rows: Iterable[Sequence[object]],
          title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_cell(v) for v in row])
    widths = [max(len(r[i]) for r in rendered) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(rendered[0], widths)))
    lines.append(sep)
    for row in rendered[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def pct(fraction: float, signed: bool = True) -> str:
    """Format a fraction as a percentage string (0.135 -> '+13.5%')."""
    sign = "+" if signed and fraction >= 0 else ""
    return f"{sign}{fraction * 100:.1f}%"


def ratio(value: float) -> str:
    """Format a multiplier ("3.96x")."""
    return f"{value:.2f}x"


def sparkline(values: Sequence[float], width: int = 60,
              ceiling: Optional[float] = None) -> str:
    """A unicode sparkline of *values*, resampled to *width* columns.

    Mirrors the paper's throughput-over-time plots in a terminal:
    ``sparkline(rates)`` next to a label gives the Fig. 8 shape at a
    glance. *ceiling* pins the top of the scale (e.g. the device limit)
    so multiple series are comparable.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return ""
    if arr.size > width:
        # Average into width buckets.
        edges = np.linspace(0, arr.size, width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0
                        for a, b in zip(edges[:-1], edges[1:])])
    top = ceiling if ceiling is not None else (arr.max() or 1.0)
    top = max(top, 1e-12)
    levels = np.clip(arr / top, 0.0, 1.0) * (len(_SPARK_CHARS) - 1)
    return "".join(_SPARK_CHARS[int(round(v))] for v in levels)


def series_text(label: str, times: np.ndarray, values: np.ndarray,
                max_points: int = 30) -> str:
    """One throughput series as a compact text row (subsampled)."""
    n = len(times)
    step = max(1, n // max_points)
    pieces = [f"t={times[i]:.0f}s:{fmt_bw(values[i])}"
              for i in range(0, n, step)]
    return f"{label}: " + "  ".join(pieces)
