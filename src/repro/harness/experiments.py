"""Per-figure experiment definitions (§5).

One function per table/figure of the paper's evaluation. Each returns a
result object with the measured rows plus a ``report()`` string printing
the same rows/series the paper shows. Magnitudes are simulation-scale
(seconds-long runs, multi-MB requests; see DESIGN.md §4.4) — the shapes
(who wins, approximate ratios, crossovers) are the reproduction target.

The ``scale`` parameter shortens the paper's 60 s timelines (default
0.25: job 1 runs 15 s, job 2 runs 7.5 s starting at +3.75 s) to keep
event counts tractable; ratios are time-scale invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..bb.client import ClientConfig
from ..bb.cluster import ClusterConfig
from ..bb.server import ServerConfig
from ..faults import FaultInjector, FaultPlan, ServerCrash
from ..metrics.stats import jain_index, scaling_efficiency, share_ratio
from ..metrics.timeline import ShareTimeline, convergence_interval
from ..units import GB, MB, fmt_bw
from ..workloads.apps import (APP_PROFILES, RESNET50, ApplicationWorkload,
                              AppProfile)
from ..workloads.custom import IopsWriteRead, PinnedWriter, WriteReadCycle
from ..workloads.ior import IORWorkload
from ..workloads.base import JobSpec
from .config import ExperimentConfig, JobRun
from .report import pct, table
from .runner import ExperimentResult, run_experiment

__all__ = [
    "SharingResult", "run_sharing_experiment",
    "fig01_interference", "fig07_scaling", "fig08_primitive",
    "fig09_user_then_size", "fig10_group_user_size", "fig12_baselines",
    "fig13_applications", "fig14_lambda", "related_datawarp",
    "InterferenceResult", "ScalingResult", "BaselineComparison",
    "LambdaResult", "CompositeResult", "ProvisioningResult",
    "AvailabilityResult", "availability_outage",
    "RepairFairnessResult", "repair_fairness", "REPAIR_POLICIES",
    "sharing_cell", "fig07_cell", "fig14_cell", "repair_cell",
]

#: background interference job of §5.5: one node of small write/read cycles.
_BG_STREAMS = 32
_BG_FILE = 4 * MB


def _bg_workload() -> IopsWriteRead:
    return IopsWriteRead(file_size=_BG_FILE, streams_per_node=_BG_STREAMS)


# =====================================================================
# Generic two-phase sharing run (the Fig. 8 / Fig. 12 shape):
# job 1 runs [0, 60s*scale); job 2 runs [15s*scale, 45s*scale).
# =====================================================================

@dataclass
class SharingResult:
    """Measurements of one two-job sharing run."""

    policy: str
    result: ExperimentResult
    t_job2_start: float
    t_job2_end: float
    solo_median: float        # job 1 unopposed (before job 2 arrives)
    shared_medians: Dict[int, float]
    shared_stddev: Dict[int, float]
    peak_throughput: float    # total, sharing window

    def report(self) -> str:
        """The paper-style medians/stddev table for this run."""
        rows = [("job1 solo", fmt_bw(self.solo_median), "-")]
        for job_id in sorted(self.shared_medians):
            rows.append((f"job{job_id} shared",
                         fmt_bw(self.shared_medians[job_id]),
                         fmt_bw(self.shared_stddev[job_id])))
        rows.append(("total shared", fmt_bw(self.peak_throughput), "-"))
        return table(("series", "median", "stddev"), rows,
                     title=f"policy={self.policy}")

    def time_to_fair_share(self, job_id: int = 2,
                           threshold: float = 0.9) -> Optional[float]:
        """§5.4's "latency to fair-sharing": seconds from the late job's
        start until its throughput first sustains *threshold* of its
        eventual shared median (None if never). Distinguishes ThemisIO's
        immediate token reallocation from GIFT's epoch-lagged budgets."""
        target = self.shared_medians.get(job_id, 0.0) * threshold
        if target <= 0:
            return None
        interval = self.result.config.sample_interval
        times, rates = self.result.series(job_id)
        for t, rate in zip(times, rates):
            if t + interval <= self.t_job2_start:
                continue
            if rate >= target:
                return max(0.0, t - self.t_job2_start)
        return None


def run_sharing_experiment(policy: str, jobs: Sequence[JobRun],
                           n_servers: int = 1, scale: float = 0.25,
                           seed: int = 0, sample_interval: Optional[float] = None,
                           server: Optional[ServerConfig] = None,
                           **cluster_kw) -> ExperimentResult:
    """Run *jobs* against one cluster under *policy* and return raw results."""
    cfg = ExperimentConfig(
        cluster=ClusterConfig(n_servers=n_servers, policy=policy,
                              server=server or ServerConfig(), seed=seed,
                              **cluster_kw),
        jobs=list(jobs),
        max_time=max((run.stop or 0.0) for run in jobs) + 1.0,
        sample_interval=sample_interval or max(0.1, scale),
    )
    return run_experiment(cfg)


def _two_job_run(policy: str, spec1: JobSpec, spec2: JobSpec,
                 scale: float, seed: int,
                 workload_factory=None, **cluster_kw) -> SharingResult:
    """The paper's canonical timeline: job 1 for 60 s, job 2 for 30 s
    starting at +15 s (times scaled)."""
    t1_end = 60.0 * scale
    t2_start, t2_end = 15.0 * scale, 45.0 * scale
    # 16 streams/node keeps even a 1-node job saturating (the paper's
    # jobs run 56 processes per node).
    make = workload_factory or (lambda: WriteReadCycle(
        file_size=10 * MB, streams_per_node=16))
    jobs = [
        JobRun(spec=spec1, workload=make(), start=0.0, stop=t1_end),
        JobRun(spec=spec2, workload=make(), start=t2_start, stop=t2_end),
    ]
    result = run_sharing_experiment(policy, jobs, scale=scale, seed=seed,
                                    **cluster_kw)
    interval = result.config.sample_interval
    # Solo window: job 1 alone, skipping startup; sharing window: both
    # active, trimmed at the edges.
    solo = result.median_throughput(spec1.job_id, t0=2 * interval,
                                    t1=t2_start)
    shared = {}
    sdev = {}
    for spec in (spec1, spec2):
        shared[spec.job_id] = result.median_throughput(
            spec.job_id, t0=t2_start + 2 * interval, t1=t2_end)
        sdev[spec.job_id] = result.stddev_throughput(
            spec.job_id, t0=t2_start + 2 * interval, t1=t2_end)
    peak = result.window_throughput(t2_start + 2 * interval, t2_end)
    return SharingResult(policy=policy, result=result,
                         t_job2_start=t2_start, t_job2_end=t2_end,
                         solo_median=solo, shared_medians=shared,
                         shared_stddev=sdev, peak_throughput=peak)


# =====================================================================
# Sweep point functions (repro.harness.sweep POINT_KINDS targets).
# Each takes one fully-resolved config dict and returns a JSON-able
# result; all state lives inside the call, so points are safe to run
# in any order, in any process (the sweep determinism contract).
# =====================================================================

def sharing_cell(config: Dict) -> Dict:
    """One two-job sharing point: the Fig. 8 timeline as a sweep cell.

    Config keys: ``policy``, ``seed``, optional ``nodes1`` (4),
    ``nodes2`` (1), ``scale`` (0.25), ``n_servers`` (1).
    """
    spec1 = JobSpec(job_id=1, user="userA",
                    nodes=int(config.get("nodes1", 4)))
    spec2 = JobSpec(job_id=2, user="userB",
                    nodes=int(config.get("nodes2", 1)))
    out = _two_job_run(str(config.get("policy", "job-fair")), spec1, spec2,
                       float(config.get("scale", 0.25)),
                       int(config.get("seed", 0)),
                       n_servers=int(config.get("n_servers", 1)))
    return {
        "solo_median": float(out.solo_median),
        "shared_medians": {str(j): float(out.shared_medians[j])
                           for j in sorted(out.shared_medians)},
        "shared_stddev": {str(j): float(out.shared_stddev[j])
                          for j in sorted(out.shared_stddev)},
        "total": float(out.peak_throughput),
    }


def fig07_cell(config: Dict) -> Dict:
    """One (policy, mode, n_servers) cell of the Fig. 7 scaling grid.

    Config keys: ``policy``, ``mode``, ``n_servers``, optional
    ``duration`` (3.0), ``block`` (8 MB), ``seed`` (0).
    """
    n = int(config["n_servers"])
    duration = float(config.get("duration", 3.0))
    jobs = [JobRun(
        spec=JobSpec(job_id=i + 1, user=f"u{i}", nodes=1),
        workload=IORWorkload(file_size=64 * MB,
                             block_size=int(config.get("block", 8 * MB)),
                             mode=str(config["mode"]), streams_per_node=8),
        start=0.0, stop=duration) for i in range(n)]
    result = run_sharing_experiment(
        str(config["policy"]), jobs, n_servers=n, scale=duration / 60.0,
        seed=int(config.get("seed", 0)), sample_interval=0.25)
    # steady window, skipping ramp-up
    return {"throughput": float(result.window_throughput(duration * 0.25,
                                                         duration))}


def fig14_cell(config: Dict) -> Dict:
    """One λ point of the Fig. 14 ladder (the Fig. 5 scenario measured).

    Config keys: ``lam`` (the sync interval, seconds), optional
    ``seed`` (0).
    """
    lam = float(config["lam"])
    seed = int(config.get("seed", 0))
    by_server, _ = _pinned_paths(seed)
    s0_paths, s1_paths = by_server["bb0"], by_server["bb1"]
    fair = {1: 0.5, 2: 0.25, 3: 0.25}
    duration = max(8 * lam, 0.8)
    server = ServerConfig(sync_interval=lam)
    jobs = [
        # Job 1 (16 nodes) touches both servers; jobs 2 and 3 one each.
        JobRun(spec=JobSpec(job_id=1, user="u1", nodes=16),
               workload=PinnedWriter([s0_paths[0], s1_paths[0]],
                                     request_size=2 * MB,
                                     streams_per_node=8),
               start=0.0, stop=duration),
        JobRun(spec=JobSpec(job_id=2, user="u2", nodes=8),
               workload=PinnedWriter([s0_paths[1]], request_size=2 * MB,
                                     streams_per_node=8),
               start=0.0, stop=duration),
        JobRun(spec=JobSpec(job_id=3, user="u3", nodes=8),
               workload=PinnedWriter([s1_paths[1]], request_size=2 * MB,
                                     streams_per_node=8),
               start=0.0, stop=duration),
    ]
    result = run_sharing_experiment("size-fair", jobs, n_servers=2,
                                    scale=duration / 60.0, seed=seed,
                                    sample_interval=lam, server=server)
    timeline = ShareTimeline(result.sampler, interval=lam,
                             start=0.0, end=duration)
    conv = convergence_interval(timeline, fair, tolerance=0.12, sustain=2)
    # Variance of job 1's observed share after convergence.
    shares = timeline.share_series(1)
    tail = shares[len(shares) // 2:]
    return {
        "intervals_to_fairness": None if conv is None else int(conv),
        "share_variance": float(tail.var()) if len(tail) else 0.0,
    }


# =====================================================================
# Fig. 8 — primitive policies on a single server
# =====================================================================

def fig08_primitive(policy: str = "size-fair", scale: float = 0.25,
                    seed: int = 0):
    """Fig. 8(a)/(b): a 4-node job competing with a 1-node job under
    size-fair or job-fair; (c): user-fair with two users (see
    :func:`fig08c_user_fair`). Expected shapes: size-fair -> ~4x ratio,
    job-fair -> ~1x, solo median near the 22 GB/s device limit."""
    spec1 = JobSpec(job_id=1, user="userA", nodes=4)
    spec2 = JobSpec(job_id=2, user="userB", nodes=1)
    out = _two_job_run(policy, spec1, spec2, scale, seed)
    out.ratio = share_ratio(out.shared_medians[1], out.shared_medians[2])
    return out


@dataclass
class CompositeResult:
    """Per-job medians plus rollups by user/group for composite policies."""

    policy: str
    result: ExperimentResult
    job_medians: Dict[int, float]
    user_totals: Dict[str, float]
    group_totals: Dict[str, float]
    total: float

    def report(self) -> str:
        """Per-job and rolled-up entity throughput table."""
        rows = [(f"job{j}", fmt_bw(v)) for j, v in sorted(self.job_medians.items())]
        rows += [(f"user {u}", fmt_bw(v)) for u, v in sorted(self.user_totals.items())]
        rows += [(f"group {g}", fmt_bw(v)) for g, v in sorted(self.group_totals.items())]
        rows.append(("total", fmt_bw(self.total)))
        return table(("entity", "median throughput"), rows,
                     title=f"policy={self.policy}")


def _steady_composite(policy: str, specs: Sequence[JobSpec], scale: float,
                      seed: int, n_servers: int = 1) -> CompositeResult:
    """All jobs run concurrently for the full (scaled) 60 s window."""
    t_end = 60.0 * scale
    jobs = [JobRun(spec=s, workload=WriteReadCycle(file_size=10 * MB,
                                                   streams_per_node=16),
                   start=0.0, stop=t_end) for s in specs]
    result = run_sharing_experiment(policy, jobs, n_servers=n_servers,
                                    scale=scale, seed=seed)
    interval = result.config.sample_interval
    t0 = 10.0 * scale  # skip the paper's "slow startup" window
    job_medians = {s.job_id: result.median_throughput(s.job_id, t0=t0,
                                                      t1=t_end)
                   for s in specs}
    user_totals: Dict[str, float] = {}
    group_totals: Dict[str, float] = {}
    for s in specs:
        user_totals[s.user] = user_totals.get(s.user, 0.0) + job_medians[s.job_id]
        group_totals[s.group] = (group_totals.get(s.group, 0.0)
                                 + job_medians[s.job_id])
    return CompositeResult(policy=policy, result=result,
                           job_medians=job_medians, user_totals=user_totals,
                           group_totals=group_totals,
                           total=sum(job_medians.values()))


def fig08c_user_fair(scale: float = 0.25, seed: int = 0) -> CompositeResult:
    """Fig. 8(c): user A runs two 2-node jobs, user B one 1-node job;
    user-fair must give both users ~equal total throughput."""
    specs = [JobSpec(job_id=1, user="userA", nodes=2),
             JobSpec(job_id=2, user="userA", nodes=2),
             JobSpec(job_id=3, user="userB", nodes=1)]
    return _steady_composite("user-fair", specs, scale, seed)


def fig09_user_then_size(scale: float = 0.25, seed: int = 0) -> CompositeResult:
    """Fig. 9: four jobs from two users (node counts 1,2 and 4,6) under
    user-then-size-fair: users split evenly, jobs 1:2 and 4:6 within."""
    specs = [JobSpec(job_id=1, user="user1", nodes=1),
             JobSpec(job_id=2, user="user1", nodes=2),
             JobSpec(job_id=3, user="user2", nodes=4),
             JobSpec(job_id=4, user="user2", nodes=6)]
    return _steady_composite("user-then-size-fair", specs, scale, seed)


def fig10_group_user_size(scale: float = 0.25, seed: int = 0) -> CompositeResult:
    """Figs. 10-11: eight jobs, four users, two groups under
    group-user-size-fair: groups even, users within a group even, jobs
    within a user proportional to node count (user2's three jobs 2:3:2)."""
    specs = [
        JobSpec(job_id=1, user="user1", group="group1", nodes=1),
        JobSpec(job_id=2, user="user1", group="group1", nodes=2),
        JobSpec(job_id=3, user="user1", group="group1", nodes=1),
        JobSpec(job_id=4, user="user2", group="group2", nodes=2),
        JobSpec(job_id=5, user="user2", group="group2", nodes=3),
        JobSpec(job_id=6, user="user2", group="group2", nodes=2),
        JobSpec(job_id=7, user="user3", group="group2", nodes=2),
        JobSpec(job_id=8, user="user4", group="group2", nodes=2),
    ]
    return _steady_composite("group-user-size-fair", specs, scale, seed)


# =====================================================================
# Fig. 7 — scaling with multiple servers
# =====================================================================

@dataclass
class ScalingResult:
    server_counts: List[int]
    rows: Dict[str, List[float]]  # "<policy>-<op>" -> GB/s per count
    efficiencies: Dict[str, List[float]] = field(default_factory=dict)

    def report(self) -> str:
        """The Fig. 7 throughput table plus efficiency summary."""
        headers = ["servers"] + list(self.rows)
        body = []
        for i, n in enumerate(self.server_counts):
            body.append([n] + [f"{self.rows[k][i] / GB:.1f} GB/s"
                               for k in self.rows])
        eff = []
        for key, series in self.rows.items():
            e = scaling_efficiency(series, self.server_counts)
            self.efficiencies[key] = list(e)
            eff.append(f"{key}: {e[-1] * 100:.0f}% at {self.server_counts[-1]}")
        return (table(headers, body, title="Fig. 7 scaling") +
                "\nefficiency vs 1 server: " + "; ".join(eff))


def fig07_scaling(server_counts: Sequence[int] = (1, 2, 4, 8),
                  duration: float = 3.0, block: int = 8 * MB,
                  seed: int = 0, workspace=None, jobs: int = 1
                  ) -> ScalingResult:
    """Fig. 7: aggregate unidirectional throughput, FIFO vs job-fair,
    write vs read, with as many client nodes as server nodes (8 IOR
    streams per client node). Expect near-linear scaling with efficiency
    declining as counts grow (placement imbalance), FIFO ≈ job-fair.

    Each (policy, mode, N) cell runs as an independent sweep point (see
    :func:`fig07_cell`): pass a ``workspace`` to cache cells across
    invocations and ``jobs`` to fan cold cells out over processes.
    """
    from .sweep import ParallelRunner
    keys: List[str] = []
    points = []
    for policy in ("fifo", "job-fair"):
        for mode in ("write", "read"):
            keys.append(f"{policy}-{mode}")
            for n in server_counts:
                points.append(("fig07_cell", {
                    "policy": policy, "mode": mode, "n_servers": int(n),
                    "duration": float(duration), "block": int(block),
                    "seed": int(seed)}))
    run = ParallelRunner(workspace=workspace, jobs=jobs).run_points(points)
    outcomes = iter(run.points)
    rows: Dict[str, List[float]] = {}
    for key in keys:
        rows[key] = [float(next(outcomes).result["throughput"])
                     for _ in server_counts]
    return ScalingResult(server_counts=list(server_counts), rows=rows)


# =====================================================================
# Fig. 12 — ThemisIO vs GIFT vs TBF
# =====================================================================

@dataclass
class BaselineComparison:
    rows: Dict[str, SharingResult]

    def report(self) -> str:
        """The Fig. 12 scheduler-comparison table."""
        body = []
        for name, r in self.rows.items():
            body.append((name, fmt_bw(r.solo_median),
                         fmt_bw(r.shared_medians[2]),
                         fmt_bw(r.shared_stddev[2]),
                         fmt_bw(r.peak_throughput)))
        return table(("scheduler", "peak (job1 solo)", "job2 shared",
                      "job2 stddev", "total shared"), body,
                     title="Fig. 12 comparison")

    def themis_advantage(self) -> Dict[str, float]:
        """Fractional throughput advantage of ThemisIO over each baseline."""
        themis = self.rows["themis"]
        out = {}
        for name, r in self.rows.items():
            if name != "themis" and r.solo_median > 0:
                out[name] = themis.solo_median / r.solo_median - 1.0
        return out


def fig12_baselines(scale: float = 0.25, seed: int = 0) -> BaselineComparison:
    """Fig. 12: a pair of single-node jobs under ThemisIO job-fair, GIFT
    (mu = 0.5 s) and TBF (user-supplied rates = capacity/2). Expected
    shape: ThemisIO sustains the highest peak, job 2 ramps fastest and
    with the lowest variance under ThemisIO; TBF is the most jittery."""
    spec1 = JobSpec(job_id=1, user="u1", nodes=1)
    spec2 = JobSpec(job_id=2, user="u2", nodes=1)
    bandwidth = ServerConfig().bandwidth
    runs = {}
    runs["themis"] = _two_job_run("job-fair", spec1, spec2, scale, seed)
    runs["gift"] = _two_job_run("gift", spec1, spec2, scale, seed,
                                gift_mu=0.5 * max(scale / 0.25, 0.25))
    runs["tbf"] = _two_job_run(
        "tbf", spec1, spec2, scale, seed,
        tbf_rates={1: bandwidth / 2, 2: bandwidth / 2})
    return BaselineComparison(rows=runs)


# =====================================================================
# Figs. 1 and 13 — application interference
# =====================================================================

@dataclass
class InterferenceResult:
    """Per-app time-to-solution under exclusive / FIFO+bg / size-fair+bg."""

    apps: List[str]
    baseline: Dict[str, float]
    fifo: Dict[str, float]
    sizefair: Dict[str, float] = field(default_factory=dict)

    def slowdown(self, app: str, setting: str) -> float:
        """Fractional slowdown of *app* under *setting* vs exclusive."""
        measured = getattr(self, setting)[app]
        return measured / self.baseline[app] - 1.0

    def slowdown_reduction(self, app: str) -> float:
        """How much of the FIFO-induced slowdown size-fair removes."""
        fifo_s = self.slowdown(app, "fifo")
        fair_s = self.slowdown(app, "sizefair")
        if fifo_s <= 0:
            return 0.0
        return max(0.0, (fifo_s - fair_s) / fifo_s)

    def report(self) -> str:
        """The Fig. 1/13 time-to-solution table."""
        body = []
        for app in self.apps:
            row = [app, f"{self.baseline[app]:.2f}s",
                   f"{self.fifo[app]:.2f}s ({pct(self.slowdown(app, 'fifo'))})"]
            if self.sizefair:
                row.append(f"{self.sizefair[app]:.2f}s "
                           f"({pct(self.slowdown(app, 'sizefair'))})")
                row.append(pct(self.slowdown_reduction(app), signed=False))
            body.append(row)
        headers = ["app", "exclusive", "FIFO + bg"]
        if self.sizefair:
            headers += ["size-fair + bg", "slowdown reduced"]
        return table(headers, body, title="Application interference")


def _run_app(profile: AppProfile, policy: str, with_background: bool,
             seed: int, n_servers: int = 1) -> float:
    """One application run; returns its time-to-solution."""
    app_run = JobRun(
        spec=JobSpec(job_id=1, user="app", nodes=profile.nodes),
        workload=ApplicationWorkload(profile),
        start=0.0, client_nodes=min(profile.nodes, 4))
    jobs = [app_run]
    # Generous horizon: apps must finish even badly interfered.
    horizon = (profile.steps * profile.compute_per_step) * 12 + 10.0
    if with_background:
        jobs.append(JobRun(
            spec=JobSpec(job_id=2, user="bg", nodes=1),
            workload=_bg_workload(), start=0.0, stop=horizon - 1.0))
    cfg = ExperimentConfig(
        cluster=ClusterConfig(n_servers=n_servers, policy=policy, seed=seed),
        jobs=jobs, max_time=horizon, sample_interval=0.5)
    result = run_experiment(cfg)
    return result.time_to_solution(1)


def fig01_interference(apps: Optional[Sequence[str]] = None,
                       seed: int = 0) -> InterferenceResult:
    """Fig. 1: each §5.1 application exclusive vs. with a background I/O
    job under the production FIFO discipline, on the paper's two-node
    burst buffer; slowdowns span from a few percent (compute-bound) to
    >100% (I/O-heavy and async-I/O apps)."""
    names = list(apps or APP_PROFILES)
    out = InterferenceResult(apps=names, baseline={}, fifo={})
    for name in names:
        profile = APP_PROFILES[name]
        out.baseline[name] = _run_app(profile, "fifo", False, seed,
                                      n_servers=2)
        out.fifo[name] = _run_app(profile, "fifo", True, seed, n_servers=2)
    return out


def fig13_applications(apps: Optional[Sequence[str]] = None,
                       seed: int = 0,
                       include_sync_resnet: bool = False):
    """Fig. 13: exclusive vs FIFO+bg vs size-fair+bg. Expected shape:
    FIFO slowdowns large for I/O-sensitive apps, size-fair slowdowns
    bounded by the background job's node-count share; size-fair removes
    most of the FIFO-induced slowdown."""
    names = list(apps or APP_PROFILES)
    out = InterferenceResult(apps=names, baseline={}, fifo={}, sizefair={})
    for name in names:
        profile = APP_PROFILES[name]
        n_servers = 2 if name.startswith("resnet") else 1  # §5.5 setup
        out.baseline[name] = _run_app(profile, "fifo", False, seed, n_servers)
        out.fifo[name] = _run_app(profile, "fifo", True, seed, n_servers)
        out.sizefair[name] = _run_app(profile, "size-fair", True, seed,
                                      n_servers)
    if include_sync_resnet:
        sync_profile = RESNET50.sync_variant()
        out.apps.append(sync_profile.name)
        out.baseline[sync_profile.name] = _run_app(sync_profile, "fifo",
                                                   False, seed, 2)
        out.fifo[sync_profile.name] = _run_app(sync_profile, "fifo", True,
                                               seed, 2)
        out.sizefair[sync_profile.name] = _run_app(sync_profile, "size-fair",
                                                   True, seed, 2)
    return out


# =====================================================================
# §6 related work — DataWarp-style provisioning vs ThemisIO sharing
# =====================================================================

@dataclass
class ProvisioningResult:
    """Total and per-job throughput under three provisioning regimes."""

    totals: Dict[str, float]                 # regime -> aggregate B/s
    per_job: Dict[str, Dict[int, float]]     # regime -> job -> B/s
    jain: Dict[str, float]                   # regime -> weighted fairness

    def report(self) -> str:
        """The provisioning-regime comparison table."""
        rows = []
        for regime in self.totals:
            job_cells = ", ".join(
                f"j{j}={v / 1e9:.1f}" for j, v in
                sorted(self.per_job[regime].items()))
            rows.append((regime, fmt_bw(self.totals[regime]),
                         f"{self.jain[regime]:.3f}", job_cells))
        return table(("regime", "total", "weighted Jain", "per-job GB/s"),
                     rows, title="DataWarp provisioning vs ThemisIO (§6)")


def related_datawarp(seed: int = 0, duration: float = 2.0
                     ) -> ProvisioningResult:
    """§6: DataWarp's *interference* policy gives each job a minimal,
    exclusive set of burst-buffer servers (isolated but "resource
    starvation" prone); the *bandwidth* policy spreads jobs over shared
    servers under FIFO (fast but interference-prone). ThemisIO's claim:
    shared servers + size-fair tokens gets both — high utilisation *and*
    per-job fairness.

    Setup: 4 servers, 2 heavy jobs (can each saturate several servers)
    and 2 light jobs (a trickle). Expected shape: isolation wastes the
    light jobs' servers (lowest total); FIFO sharing is fast but skewed
    toward the heavy jobs beyond their entitlement; size-fair keeps the
    total high while holding jobs near their node-count shares.
    """
    from ..fs.hashing import ConsistentHashRing
    from ..workloads.custom import PinnedWriter

    n_servers = 4
    heavy = {1: 16, 2: 16}   # job -> streams (demand far above one server)
    light = {3: 2, 4: 2}
    nodes = {1: 8, 2: 8, 3: 1, 4: 1}

    ring = ConsistentHashRing([f"bb{i}" for i in range(n_servers)])

    def pinned_paths(server: str, count: int) -> List[str]:
        found = []
        i = 0
        while len(found) < count:
            path = f"/fs/pin/{server}-f{i}"
            if ring.lookup(path) == server:
                found.append(path)
            i += 1
        return found

    def run(regime: str) -> ExperimentResult:
        jobs = []
        for idx, (job_id, streams) in enumerate([*heavy.items(),
                                                 *light.items()]):
            if regime == "isolated":
                # DataWarp interference policy: job -> its own server.
                paths = pinned_paths(f"bb{idx}", streams)
                workload = PinnedWriter(paths, request_size=4 * MB,
                                        streams_per_node=streams)
            else:
                # Shared servers: per-stream files spread over the ring.
                workload = WriteReadCycle(file_size=10 * MB,
                                          streams_per_node=streams)
            jobs.append(JobRun(
                spec=JobSpec(job_id=job_id, user=f"u{job_id}",
                             nodes=nodes[job_id]),
                workload=workload, start=0.0, stop=duration))
        policy = "size-fair" if regime == "themis" else "fifo"
        return run_sharing_experiment(policy, jobs, n_servers=n_servers,
                                      scale=duration / 60.0, seed=seed,
                                      sample_interval=0.25)

    totals: Dict[str, float] = {}
    per_job: Dict[str, Dict[int, float]] = {}
    jain: Dict[str, float] = {}
    entitlement = {j: nodes[j] for j in nodes}
    for regime in ("isolated", "fifo-shared", "themis"):
        result = run(regime)
        t0 = duration * 0.25
        per_job[regime] = {
            j: result.window_throughput(t0, duration, j) for j in nodes}
        totals[regime] = sum(per_job[regime].values())
        # Weighted fairness: rate per entitled node should be even.
        jain[regime] = jain_index([
            per_job[regime][j] / entitlement[j] for j in nodes])
    return ProvisioningResult(totals=totals, per_job=per_job, jain=jain)


# =====================================================================
# Fig. 14 — λ-delayed fairness
# =====================================================================

@dataclass
class LambdaResult:
    lambdas: List[float]
    convergence: Dict[float, Optional[int]]  # λ -> intervals to fairness
    variance: Dict[float, float]             # λ -> mean share variance

    def report(self) -> str:
        """The Fig. 14 convergence/variance table."""
        body = []
        for lam in self.lambdas:
            conv = self.convergence[lam]
            body.append((f"{lam * 1000:.0f} ms",
                         "never" if conv is None else str(conv),
                         f"{self.variance[lam]:.4f}"))
        return table(("lambda", "intervals to global fairness",
                      "share variance"),
                     body, title="Fig. 14 lambda-delayed fairness")


def _pinned_paths(cluster_seed: int, n_servers: int = 2
                  ) -> Tuple[Dict[str, List[str]], ClusterConfig]:
    """Find file paths whose placement pins each job to chosen servers."""
    cfg = ClusterConfig(n_servers=n_servers, policy="size-fair",
                        seed=cluster_seed)
    from ..fs.hashing import ConsistentHashRing
    ring = ConsistentHashRing([f"bb{i}" for i in range(n_servers)])
    by_server: Dict[str, List[str]] = {f"bb{i}": [] for i in range(n_servers)}
    i = 0
    while any(len(v) < 4 for v in by_server.values()):
        path = f"/fs/pin/file-{i}"
        owner = ring.lookup(path)
        if len(by_server[owner]) < 4:
            by_server[owner].append(path)
        i += 1
    return by_server, cfg


def fig14_lambda(lambdas: Sequence[float] = (0.010, 0.050, 0.200, 0.500),
                 seed: int = 0, workspace=None, jobs: int = 1
                 ) -> LambdaResult:
    """Fig. 14 (the Fig. 5 scenario measured): three size-fair jobs (16,
    8, 8 nodes) whose files live on disjoint servers; vary λ. Expected:
    global fairness within a couple of intervals for λ >= 50 ms, more
    intervals at 10 ms, and higher share variance at shorter λ.

    Each λ runs as an independent sweep point (see :func:`fig14_cell`);
    ``workspace``/``jobs`` enable caching and parallel fan-out.
    """
    from .sweep import ParallelRunner
    points = [("fig14_cell", {"lam": float(lam), "seed": int(seed)})
              for lam in lambdas]
    run = ParallelRunner(workspace=workspace, jobs=jobs).run_points(points)
    convergence: Dict[float, Optional[int]] = {}
    variance: Dict[float, float] = {}
    for lam, outcome in zip(lambdas, run.points):
        conv = outcome.result["intervals_to_fairness"]
        convergence[lam] = None if conv is None else int(conv)
        variance[lam] = float(outcome.result["share_variance"])
    return LambdaResult(lambdas=list(lambdas), convergence=convergence,
                        variance=variance)


# =====================================================================
# Availability under a server outage (§7's open problem, exercised)
# =====================================================================

@dataclass
class AvailabilityResult:
    """What an N-job run looked like through one server crash + restart.

    ``recovery_time`` is restart-to-first-served-request on the crashed
    server (None if nothing completed there after the restart).
    ``jain_*`` are Jain fairness indices of per-job throughput before the
    crash, during the outage, and after the rejoin settles.
    """

    result: ExperimentResult
    crashed_server: str
    crash_at: float
    restart_at: float
    recovery_time: Optional[float]
    jain_before: float
    jain_during: float
    jain_after: float

    @property
    def stats(self):
        """The run's :class:`~repro.metrics.FaultStats` counters."""
        return self.result.cluster.fault_stats

    def report(self) -> str:
        """Availability table: fairness through the outage + recovery."""
        stats = self.stats
        rec = ("n/a" if self.recovery_time is None
               else f"{self.recovery_time * 1000:.1f} ms")
        rows = [
            ("crashed server", self.crashed_server),
            ("outage window", f"[{self.crash_at:.2f}s, {self.restart_at:.2f}s)"),
            ("recovery time", rec),
            ("Jain before crash", f"{self.jain_before:.3f}"),
            ("Jain during outage", f"{self.jain_during:.3f}"),
            ("Jain after rejoin", f"{self.jain_after:.3f}"),
            ("requests retried", str(stats.retries)),
            ("rpc timeouts", str(stats.rpc_timeouts)),
            ("failovers", str(stats.failovers)),
            ("requests failed", str(stats.requests_failed)),
            ("dropped in crash", str(stats.requests_dropped_in_crash)),
            ("duplicate requests", str(stats.duplicate_requests)),
            ("degraded sync rounds", str(stats.degraded_sync_rounds)),
        ]
        return table(("metric", "value"), rows,
                     title="Availability under one server outage")


def availability_outage(n_jobs: int = 3, n_servers: int = 2,
                        duration: float = 6.0, crash_at: float = 2.0,
                        restart_at: float = 3.5, seed: int = 0,
                        crashed_server: str = "bb0",
                        policy: str = "job-fair") -> AvailabilityResult:
    """N jobs write/read through a crash of one of the servers.

    The cluster runs with every durability and fault-tolerance layer on:
    journaled metadata + log-structured storage (acked writes survive the
    crash), fault-tolerant clients (timeout / retry / failover), and
    degraded λ-sync (surviving peers keep exchanging tables while the
    crashed one is away). Expected shape: throughput dips but never
    deadlocks during the outage, the crashed server serves again within
    a few client-timeout periods of its restart, and Jain fairness after
    the rejoin returns to the pre-crash level.
    """
    timeout = 0.25
    cfg = ExperimentConfig(
        cluster=ClusterConfig(
            n_servers=n_servers, policy=policy, seed=seed,
            journal=True, storage_backend="log",
            client=ClientConfig(rpc_timeout=timeout, rpc_retries=-1),
            server=ServerConfig(sync_timeout=0.5)),
        jobs=[JobRun(spec=JobSpec(job_id=i + 1, user=f"u{i + 1}", nodes=1),
                     workload=WriteReadCycle(file_size=4 * MB,
                                             streams_per_node=4),
                     start=0.0, stop=duration) for i in range(n_jobs)],
        max_time=duration + 1.0,
        sample_interval=0.25,
    )
    plan = FaultPlan([ServerCrash(crashed_server, at=crash_at,
                                  restart_at=restart_at)])

    def arm(cluster):
        FaultInjector(cluster, plan).arm()

    result = run_experiment(cfg, on_cluster=arm)
    server = result.cluster.servers[crashed_server]
    recovery = None
    if (server.first_completion_after_restart is not None
            and server.restarted_at is not None):
        recovery = (server.first_completion_after_restart
                    - server.restarted_at)
    job_ids = [run.spec.job_id for run in cfg.jobs]

    def jain(t0: float, t1: float) -> float:
        return jain_index([result.window_throughput(t0, t1, j)
                           for j in job_ids])

    settle = 2 * timeout  # let retries/failbacks drain out of the window
    return AvailabilityResult(
        result=result, crashed_server=crashed_server,
        crash_at=crash_at, restart_at=restart_at,
        recovery_time=recovery,
        jain_before=jain(settle, crash_at),
        jain_during=jain(crash_at + settle, restart_at),
        jain_after=jain(restart_at + settle, duration))


# =====================================================================
# Repair vs. fairness (the erasure tier's scheduling question)
# =====================================================================

#: metric key -> column header of the repair-vs-fairness matrix.
_REPAIR_COLUMNS = (
    ("fg_before", "fg before"),
    ("fg_during", "fg during"),
    ("slowdown", "slowdown"),
    ("repair_completion_s", "repair s"),
    ("repair_bytes", "repair B"),
    ("groups_rebuilt", "rebuilt"),
    ("data_lost_groups", "lost"),
    ("degraded_reads", "deg reads"),
    ("degraded_writes", "deg writes"),
)


@dataclass
class RepairFairnessResult:
    """Per-policy view of one crash-mid-burst repair run.

    ``rows`` maps policy -> metric dict (the :func:`repair_cell` output):
    foreground throughput before vs during the repair window, the
    resulting slowdown factor, repair completion time (detection to the
    last rebuilt share), repair traffic, and the loss/degradation
    counters. ``data_lost_groups`` must be 0 for every policy — a single
    crash is within the ``n - k`` tolerance.
    """

    policies: List[str]
    rows: Dict[str, Dict[str, Optional[float]]]

    def report(self) -> str:
        """The policy x metric matrix, plus the starvation verdict."""
        def fmt(key, value):
            if value is None:
                return "unfinished"
            if key in ("fg_before", "fg_during"):
                return fmt_bw(value)
            if key == "slowdown":
                return f"{value:.2f}x"
            if key == "repair_completion_s":
                return f"{value:.3f}s"
            return str(int(value))

        body = [tuple([policy] + [fmt(key, self.rows[policy].get(key))
                                  for key, _ in _REPAIR_COLUMNS])
                for policy in self.policies]
        out = table(("policy",) + tuple(h for _, h in _REPAIR_COLUMNS),
                    body, title="Repair vs. foreground fairness "
                    "(one crash mid-burst)")
        verdict = self.size_fair_verdict()
        if verdict:
            out += "\n" + verdict
        return out

    def size_fair_verdict(self) -> str:
        """Does size-fair starve repair? Compare its repair completion
        against the fastest policy's (repair runs as a size-1 job, so
        size-fair hands it the smallest share of the burst)."""
        done = {p: r["repair_completion_s"] for p, r in self.rows.items()
                if r.get("repair_completion_s") is not None}
        if "size-fair" not in self.rows or not done:
            return ""
        if "size-fair" not in done:
            return ("size-fair verdict: repair did not finish within the "
                    "run — size-fair starves the size-1 repair job.")
        best = min(done.values())
        mine = done["size-fair"]
        ratio = mine / best if best > 0 else 1.0
        if ratio > 2.0:
            return (f"size-fair verdict: repair takes {ratio:.1f}x the "
                    f"fastest policy's time — size-fair deprioritises "
                    f"(but does not strictly starve) the size-1 repair job.")
        return (f"size-fair verdict: no starvation — repair finishes in "
                f"{mine:.3f}s, {ratio:.2f}x the fastest policy.")


def repair_cell(config: Dict) -> Dict:
    """One policy's crash-mid-burst repair run as a sweep cell.

    Config keys: ``policy``, optional ``seed`` (0), ``n_jobs`` (3),
    ``nodes`` (2), ``n_servers`` (7), ``k`` (3), ``n_shares`` (5),
    ``duration`` (6.0), ``crash_at`` (2.0), ``crashed`` ("bb0").

    The cluster runs the erasure tier with repair on; one data-share
    server crashes mid-burst and never restarts, so foreground I/O runs
    degraded (reconstructing reads, parity-overlay writes) while the
    repair job rebuilds the lost shares under the policy's arbitration.
    """
    policy = str(config.get("policy", "job-fair"))
    seed = int(config.get("seed", 0))
    n_jobs = int(config.get("n_jobs", 3))
    nodes = int(config.get("nodes", 2))
    duration = float(config.get("duration", 6.0))
    crash_at = float(config.get("crash_at", 2.0))
    crashed = str(config.get("crashed", "bb0"))
    timeout = 0.25
    cfg = ExperimentConfig(
        cluster=ClusterConfig(
            n_servers=int(config.get("n_servers", 7)), policy=policy,
            seed=seed,
            erasure=(int(config.get("k", 3)),
                     int(config.get("n_shares", 5))),
            repair=True, repair_detect_interval=0.25,
            client=ClientConfig(rpc_timeout=timeout, rpc_retries=-1),
            server=ServerConfig(sync_timeout=0.5)),
        jobs=[JobRun(spec=JobSpec(job_id=i + 1, user=f"u{i + 1}",
                                  nodes=nodes),
                     workload=WriteReadCycle(file_size=4 * MB,
                                             streams_per_node=4),
                     start=0.0, stop=duration) for i in range(n_jobs)],
        max_time=duration + 1.0,
        sample_interval=0.25,
    )
    plan = FaultPlan([ServerCrash(crashed, at=crash_at)])

    def arm(cluster):
        FaultInjector(cluster, plan).arm()

    result = run_experiment(cfg, on_cluster=arm)
    cluster = result.cluster
    stats = cluster.fault_stats
    repair = cluster.repair.summary()
    finished = [e["finished_at"] for e in cluster.repair.episodes]
    completion = (max(finished) - crash_at) if finished else None
    job_ids = [run.spec.job_id for run in cfg.jobs]
    settle = 2 * timeout

    def fg(t0: float, t1: float) -> float:
        return sum(result.window_throughput(t0, t1, j) for j in job_ids)

    before = fg(settle, crash_at)
    during = fg(crash_at + settle, duration)
    return {
        "fg_before": float(before),
        "fg_during": float(during),
        "slowdown": float(before / during) if during > 0 else None,
        "repair_completion_s": (None if completion is None
                                else float(completion)),
        "repair_bytes": int(repair["repair_bytes"]),
        "groups_repaired": int(repair["groups_repaired"]),
        "groups_clean": int(repair["groups_clean"]),
        "groups_rebuilt": int(repair["groups_repaired"]
                              + repair["groups_clean"]),
        "groups_lost": int(repair["groups_lost"]),
        "io_failures": int(repair["io_failures"]),
        "data_lost_groups": int(stats.data_lost_groups),
        "degraded_reads": int(stats.degraded_reads),
        "degraded_writes": int(stats.degraded_writes),
        "shares_reconstructed": int(stats.shares_reconstructed),
    }


#: the policies the repair study compares (§5.4's ladder + FIFO floor).
REPAIR_POLICIES = ("fifo", "job-fair", "size-fair", "gift", "tbf")


def repair_fairness(policies: Sequence[str] = REPAIR_POLICIES,
                    seed: int = 0, duration: float = 6.0,
                    crash_at: float = 2.0, workspace=None, jobs: int = 1
                    ) -> RepairFairnessResult:
    """The repair-vs-fairness study: one crash mid-burst per policy.

    Each policy runs as an independent sweep point (see
    :func:`repair_cell`); ``workspace``/``jobs`` enable content-addressed
    caching and parallel fan-out, exactly like :func:`fig14_lambda`.
    Expected shape: every policy finishes repair with zero lost groups
    (one crash is within ``n - k``); repair completion time varies with
    how much bandwidth the policy hands the size-1 repair job while the
    foreground burst runs degraded.
    """
    from .sweep import ParallelRunner
    points = [("repair_cell", {"policy": str(p), "seed": int(seed),
                               "duration": float(duration),
                               "crash_at": float(crash_at)})
              for p in policies]
    run = ParallelRunner(workspace=workspace, jobs=jobs).run_points(points)
    rows = {policy: outcome.result
            for policy, outcome in zip(policies, run.points)}
    return RepairFairnessResult(policies=list(policies), rows=rows)
