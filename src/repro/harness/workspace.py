"""Content-addressed experiment workspace (the sweep results store).

A *workspace* is an on-disk store of experiment point results keyed by
a canonical content hash of the fully-resolved point configuration plus
the code revision that produced it (the signac project/statepoint idea
reduced to what sweeps need). Re-running a sweep only pays for points
whose config or code changed; everything else is a cache hit read back
from disk — and because every stored result is a canonical-JSON
document, a replayed sweep is byte-identical to the run that populated
the store (see :mod:`repro.harness.sweep` for the runner and the
serial == parallel == replay contract).

Layout under the workspace root (default ``.workspace/``)::

    .workspace/
      index.json            # key -> {kind, rev} summary (rebuildable)
      points/<key>.json     # one atomically-written blob per point

Durability rules:

- **Atomic writes.** Every blob (and the index) is written to a temp
  file in the same directory and ``os.replace``\\ d into place, so a
  crashed run never leaves a half-written blob behind.
- **Corruption is a cache miss.** A blob that fails to parse, fails its
  embedded-key check, or lacks the required fields is deleted on read
  and reported as missing; the runner simply recomputes that point.
- **The index is advisory.** Lookups go to the blob files; the index
  only summarises the store for listings and is rebuilt from the blob
  directory whenever it is missing or stale.

Keys never include host metadata (timestamps, hostnames): the same
config at the same code revision hashes to the same key on any machine.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import tempfile
from typing import Any, Dict, List, Optional

__all__ = ["canonical_json", "content_digest", "point_key", "code_rev",
           "Workspace"]

#: Bump when the blob schema changes incompatibly; part of every key so
#: old-schema blobs age out as misses instead of being misread.
SCHEMA_VERSION = 1

#: Environment override for the code revision (tests pin it; containers
#: without git metadata can set it to a build id).
REV_ENV_VAR = "REPRO_CODE_REV"


def canonical_json(doc: Any) -> str:
    """Serialise *doc* to canonical JSON: sorted keys, minimal
    separators, NaN/Infinity rejected.

    Two structurally equal documents — regardless of dict insertion
    order — produce the same byte string, so hashes and byte-equality
    comparisons over canonical JSON are content comparisons. Floats use
    Python's shortest-roundtrip ``repr``, which is exact and stable
    across platforms for IEEE-754 doubles.
    """
    return json.dumps(doc, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_digest(doc: Any) -> str:
    """Stable hex digest of *doc*'s canonical JSON form."""
    payload = canonical_json(doc).encode("utf-8")
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def point_key(kind: str, config: Dict[str, Any], rev: str) -> str:
    """The content-addressed store key of one experiment point.

    *kind* names the point function (see
    :data:`repro.harness.sweep.POINT_KINDS`), *config* is the fully
    resolved parameter dict, *rev* the code revision. Any change to any
    of the three produces a different key, which is exactly the
    invalidation rule: unchanged points are free, changed points rerun.
    """
    return content_digest({"kind": kind, "config": config, "rev": rev,
                           "schema": SCHEMA_VERSION})


def code_rev() -> str:
    """The code revision used in store keys.

    The :data:`REV_ENV_VAR` environment variable wins when set (tests
    pin revisions with it); otherwise the short git revision of this
    checkout, ``-dirty``-suffixed when tracked files have uncommitted
    changes; ``"unknown"`` outside a git checkout.
    """
    pinned = os.environ.get(REV_ENV_VAR)
    if pinned:
        return pinned
    here = os.path.dirname(os.path.abspath(__file__))
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=here,
            capture_output=True, text=True, check=True).stdout.strip()
    except Exception:
        return "unknown"
    dirty = subprocess.run(
        ["git", "status", "--porcelain", "--untracked-files=no"], cwd=here,
        capture_output=True, text=True).stdout.strip()
    return f"{rev}-dirty" if dirty else rev


def _atomic_write_json(path: str, doc: Any) -> None:
    """Write *doc* as JSON to *path* via a same-directory temp file and
    ``os.replace`` (atomic on POSIX)."""
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(prefix=".tmp-", suffix=".json",
                               dir=directory)
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(doc, fh, sort_keys=True, separators=(",", ":"))
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Workspace:
    """A content-addressed store of experiment point results on disk.

    Blobs are complete, self-describing documents (they embed their own
    key, kind, config, result, and metadata), so the store can always
    be audited or rebuilt from the blob directory alone.
    """

    _REQUIRED_FIELDS = ("key", "kind", "config", "result", "meta")

    def __init__(self, root: str = ".workspace"):
        self.root = root
        self.points_dir = os.path.join(root, "points")
        self._index: Optional[Dict[str, Dict[str, Any]]] = None
        self._index_dirty = False

    # ------------------------------------------------------------- paths
    def _blob_path(self, key: str) -> str:
        return os.path.join(self.points_dir, f"{key}.json")

    def _index_path(self) -> str:
        return os.path.join(self.root, "index.json")

    def _ensure_dirs(self) -> None:
        os.makedirs(self.points_dir, exist_ok=True)

    # ------------------------------------------------------------- blobs
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored blob for *key*, or ``None`` on a miss.

        A corrupted blob (unparseable, missing fields, or whose embedded
        key disagrees with its filename) is deleted and reported as a
        miss — the runner recomputes the point and the store heals.
        """
        path = self._blob_path(key)
        try:
            with open(path) as fh:
                blob = json.load(fh)
        except FileNotFoundError:
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError, ValueError):
            self._remove_blob(key)
            return None
        if (not isinstance(blob, dict)
                or any(f not in blob for f in self._REQUIRED_FIELDS)
                or blob["key"] != key):
            self._remove_blob(key)
            return None
        return blob

    def put(self, key: str, kind: str, config: Dict[str, Any],
            result: Any, rev: str, wall_s: float = 0.0) -> None:
        """Store *result* for the point (*kind*, *config*, *rev*) under
        *key*, atomically, and record it in the in-memory index.

        ``wall_s`` is the host wall-clock the point took to compute —
        pure metadata (it never enters the key or the result document)
        used by the runner's serial-time estimate on later cache hits.
        """
        self._ensure_dirs()
        blob = {
            "key": key,
            "kind": kind,
            "config": config,
            "result": result,
            "meta": {"rev": rev, "wall_s": round(float(wall_s), 6),
                     "schema": SCHEMA_VERSION},
        }
        _atomic_write_json(self._blob_path(key), blob)
        index = self.index()
        index[key] = {"kind": kind, "rev": rev}
        self._index_dirty = True

    def discard(self, key: str) -> bool:
        """Drop *key*'s blob (used by ``--rerun``); True if one existed."""
        existed = self._remove_blob(key)
        index = self.index()
        if index.pop(key, None) is not None:
            self._index_dirty = True
        return existed

    def _remove_blob(self, key: str) -> bool:
        try:
            os.unlink(self._blob_path(key))
            return True
        except OSError:
            return False

    # ------------------------------------------------------------- index
    def index(self) -> Dict[str, Dict[str, Any]]:
        """The key -> ``{kind, rev}`` summary index (loaded lazily).

        Missing or corrupt index files are rebuilt by scanning the blob
        directory; the index never gates :meth:`get`, so staleness can
        cost a rebuild but never a wrong answer.
        """
        if self._index is None:
            self._index = self._load_or_rebuild_index()
        return self._index

    def _load_or_rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        try:
            with open(self._index_path()) as fh:
                doc = json.load(fh)
            points = doc.get("points")
            if isinstance(points, dict):
                return points
        except (FileNotFoundError, json.JSONDecodeError, OSError,
                ValueError):
            pass
        return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, Dict[str, Any]]:
        index: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.points_dir))
        except OSError:
            return index
        for name in names:
            if not name.endswith(".json"):
                continue
            blob = self.get(name[:-len(".json")])
            if blob is not None:
                index[blob["key"]] = {"kind": blob["kind"],
                                      "rev": blob["meta"].get("rev", "")}
        self._index_dirty = True
        return index

    def flush(self) -> None:
        """Persist the index if it changed since load (atomic write)."""
        if self._index is None or not self._index_dirty:
            return
        self._ensure_dirs()
        _atomic_write_json(self._index_path(),
                           {"schema": SCHEMA_VERSION, "points": self._index})
        self._index_dirty = False

    # ----------------------------------------------------------- queries
    def keys(self) -> List[str]:
        """All stored point keys, sorted."""
        return sorted(self.index())

    def __len__(self) -> int:
        return len(self.index())

    def blobs(self, kind: Optional[str] = None,
              rev: Optional[str] = None) -> List[Dict[str, Any]]:
        """Every stored blob matching *kind* and/or *rev*, in key order.

        Reads each matching blob from disk (corrupt ones self-heal to
        misses and are skipped); used by artifact assembly and
        ``scripts/bench_compare.py --sweep-workspace``.
        """
        out = []
        for key, entry in sorted(self.index().items()):
            if kind is not None and entry.get("kind") != kind:
                continue
            if rev is not None and entry.get("rev") != rev:
                continue
            blob = self.get(key)
            if blob is not None:
                out.append(blob)
        return out

    def clear(self) -> int:
        """Delete every stored blob; returns how many were dropped."""
        dropped = 0
        for key in self.keys():
            if self.discard(key):
                dropped += 1
        return dropped

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Workspace root={self.root!r} points={len(self)}>"
