"""Benchmark-regression kernels and the ``repro bench`` runner.

Executes the hot-path micro kernels plus representative system runs and
emits ``BENCH_<rev>.json`` with per-kernel throughput (ops/sec),
simulation event rates (events/sec), and wall-clock seconds.
``scripts/bench_compare.py`` diffs two of these files and fails on
regression — CI runs this in ``--quick`` mode as a smoke job.

Usage::

    PYTHONPATH=src python -m repro bench [--quick] [--out PATH]

(``benchmarks/baseline.py`` is a compatibility shim over this module.)

Kernel inventory
----------------
- ``scheduler_enqueue_dequeue`` — token-scheduler arbitration cycle.
- ``token_draw`` — cumulative-boundary search over a 64-job assignment.
- ``policy_shares_composite`` — Eq. 1 chain evaluation, three-tier
  policy (exercises the incremental :class:`CompositeShareCache`).
- ``engine_timeout_churn`` — raw DES event loop throughput.
- ``lambda_sync_round`` — cluster-wide λ-sync epochs on 8 servers with
  live client heartbeats (batched gather→merge→scatter protocol).
- ``gift_epoch`` — GIFT allocation boundaries through a steady
  donate/redeem cycle (exercises the warm-started coupon LP).
- ``fs_write_path`` — metadata + striping + extent-allocator fast path:
  create/write/stat/truncate/unlink over striped files.
- ``system_contended_write`` / ``system_disjoint_write`` — 3-job
  end-to-end runs on one server, with and without lock conflicts.
- ``erasure_encode_decode`` — GF(256) Reed–Solomon encode + worst-case
  ``n - k``-loss decode over a batch of stripe groups.
- ``repair_storm`` — end-to-end erasure repair: payload writes, one
  server crash, detection, scheduled share rebuilds, restripe.

Scale-regime kernels (ISSUE 5) probe the paths whose cost used to grow
with total population instead of with what changed:

- ``scheduler_dequeue_4k_jobs`` — churny dequeue over a 4096-job
  backlog (every draw changes backlog membership: the worst case for
  the exact per-draw rebuild, O(log n) for the Fenwick sampler).
- ``lambda_sync_delta_n16`` — 16-server λ-sync epochs over a populated
  but churn-light table; reports delta-encoded payload bytes against
  the nominal full-table wire bytes.
- ``contended_lock_fanout`` — one release against hundreds of parked
  range waiters (range-indexed wake vs wake-everyone-and-retry).
- ``gift_quiescent_epochs`` — GIFT boundaries over a large idle job
  population (quiescence forecasting vs full per-boundary allocation).

Event-queue kernels (ISSUE 10) probe the cancellation/compaction
machinery under timer-heavy churn:

- ``engine_timer_churn`` — batch-cancel storms: waves of doomed
  timeouts cancelled en masse, retired by threshold compaction.
- ``rpc_timeout_churn`` — 10^5 outstanding timed RPCs through the real
  UCX stack; the reported rate is the churn phase (carrying and
  retiring the expiry-timer garbage after every reply has landed).
- ``heartbeat_storm_n4096`` — 4096 fault-tolerant clients beating two
  servers, half disconnecting mid-run.

``--scale-sweep`` runs those kernels across growing populations with
each fast path on and off, so the sublinear claims are measured.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Callable, Dict, Optional

import numpy as np

from .bb import ClientConfig, Cluster, ClusterConfig, ServerConfig
from .core import (JobInfo, Policy, StatisticalTokenScheduler,
                   TokenAssignment)
from .core import scheduler as _schedmod
from .core.baselines import GiftScheduler
from .core.baselines import gift as _giftmod
from .fs import erasure as _ecmod
from .fs import locking as _lockmod
from .fs.filesystem import ThemisFS
from .fs.locking import RangeLockTable
from .harness.workspace import code_rev as git_rev
from .net import Fabric
from .sim import process as _procmod
from .sim.engine import Engine
from .sim.rng import RngRegistry
from .ucx import RpcClient, RpcServer, UCPContext
from .units import GB, KiB, MB, MiB

__all__ = ["run_all", "run_and_write", "run_scale_sweep",
           "run_and_write_sweep", "git_rev", "main",
           "bench_scale_cell", "bench_lambda_delta_cell",
           "bench_sync_cell", "bench_sync_ladder",
           "bench_timer_churn_cell"]


class _Req:
    __slots__ = ("job_id", "cost")

    def __init__(self, job_id: int, cost: float = 1.0):
        self.job_id = job_id
        self.cost = cost


def _jobs(n: int, users: int = 4, groups: int = 2):
    return [JobInfo(job_id=i, user=f"u{i % users}", group=f"g{i % groups}",
                    size=(i % 8) + 1) for i in range(n)]


def _time_kernel(fn: Callable[[], int], rounds: int) -> Dict[str, float]:
    """Run *fn* (returns ops done) *rounds* times; report best-round rate."""
    best = float("inf")
    total_wall = 0.0
    ops = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        total_wall += dt  # lint: disable=PERF102 -- host wall-clock bookkeeping
        if dt < best:
            best = dt
    return {
        "wall_s": round(best, 6),
        "wall_mean_s": round(total_wall / rounds, 6),
        "ops": ops,
        "ops_per_s": round(ops / best, 1),
    }


# ---------------------------------------------------------------- kernels
def bench_scheduler_enqueue_dequeue() -> int:
    """The arbitration hot path: 16 jobs, 64-request enqueue/dequeue cycles."""
    policy = Policy.parse("job-fair")
    rng = RngRegistry(0).stream("bench.scheduler_enqueue_dequeue")
    scheduler = StatisticalTokenScheduler(policy, rng)
    scheduler.on_jobs_changed(_jobs(16), 0.0)
    requests = [_Req(i % 16) for i in range(64)]
    cycles = 200
    for _ in range(cycles):
        for request in requests:
            scheduler.enqueue(request, 0.0)
        for _ in range(len(requests)):
            scheduler.dequeue(0.0)
    return cycles * 2 * len(requests)


def bench_token_draw() -> int:
    """Cumulative-boundary search over a 64-job assignment."""
    assignment = TokenAssignment({i: float(i + 1) for i in range(64)})
    us = RngRegistry(0).stream("bench.token_draw").random(5000).tolist()
    reps = 10
    draw = assignment.draw
    for _ in range(reps):
        for u in us:
            draw(u)
    return reps * len(us)


def bench_policy_shares_composite() -> int:
    """Eq. 1 chain evaluation for a three-tier policy over 64 jobs."""
    policy = Policy.parse("group-user-size-fair")
    population = _jobs(64)
    reps = 300
    for _ in range(reps):
        policy.shares(population)
    return reps


def bench_engine_timeout_churn() -> int:
    """Raw DES kernel throughput: schedule/fire a storm of timeouts."""
    engine = Engine()
    n_procs, n_ticks = 50, 400

    def ticker():
        for _ in range(n_ticks):
            yield engine.timeout(0.001)

    for _ in range(n_procs):
        engine.process(ticker())
    engine.run()
    return n_procs * n_ticks


def bench_lambda_sync_round() -> int:
    """Cluster-wide λ-sync epochs on 8 servers (protocol cost only).

    One op is one sync epoch (every server's table exchange for one λ
    window). No clients are attached, so every simulated event is sync
    traffic: the batched protocol's coordinator gather→merge→scatter
    (2·(N−1) message pairs) against the pairwise N·(N−1) exchange that
    ``ServerConfig.batched_sync=False`` restores for an apples-to-apples
    comparison.
    """
    epochs = 60
    cluster = Cluster(ClusterConfig(
        n_servers=8, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=1)))
    interval = cluster.config.server.sync_interval
    cluster.run(until=(epochs + 0.5) * interval)
    return epochs


def bench_gift_epoch() -> int:
    """GIFT allocation boundaries through a steady donate/redeem cycle.

    Each cycle job 1 first under-demands (banking coupons) then
    over-demands (redeeming them through the LP), so every boundary
    exercises the coupon-redemption solve — the path the warm-start
    memo accelerates once the cycle repeats.
    """
    sched = GiftScheduler(capacity=100.0, mu=1.0)
    sched.on_jobs_changed([JobInfo(job_id=1, user="u0"),
                           JobInfo(job_id=2, user="u1")], 0.0)
    epochs = 120
    now = 0.0
    for _ in range(epochs // 2):
        # Donor phase: job 1 leaves most of its share unused.
        sched.enqueue(_Req(1, 5.0), now)
        for _ in range(95):
            sched.enqueue(_Req(2, 1.0), now)
        while sched.dequeue(now) is not None:
            pass
        now += 1.0  # lint: disable=PERF102 -- sim-clock step, not a float sum
        # Redeem phase: job 1 over-demands while holding coupons.
        for _ in range(120):
            sched.enqueue(_Req(1, 1.0), now)
        while sched.dequeue(now) is not None:
            pass
        now += 1.0  # lint: disable=PERF102 -- sim-clock step, not a float sum
    return epochs


def bench_fs_write_path() -> int:
    """Metadata + striping + allocator fast path on a 4-server FS."""
    fs = ThemisFS([f"s{i}" for i in range(4)], capacity_per_server=256 * MiB,
                  stripe_size=MiB, default_stripe_count=4)
    fs.makedirs("/fs/data")
    files = [f"/fs/data/f{i}" for i in range(8)]
    buf = b"x" * (64 * KiB)
    ops = 0
    for path in files:
        fs.create(path)
        ops += 1
    for rep in range(48):
        for path in files:
            offset = ((rep * 7) % 64) * len(buf)
            fs.write(path, offset, buf)
            fs.stat(path)
            fs.data_servers(path, offset, len(buf))
            ops += 3
        if rep % 16 == 15:
            # Free every chunk (extent free + coalesce), then regrow.
            for path in files:
                fs.truncate(path, 0)
                ops += 1
    for path in files:
        fs.unlink(path)
        ops += 1
    return ops


def bench_erasure_encode_decode(groups: int = 24, k: int = 4, n: int = 6,
                                share_size: int = 8 * KiB) -> int:
    """GF(256) Reed–Solomon hot path: encode ``k``-of-``n`` groups,
    then decode each one back from a rotating loss of ``n - k`` shares
    (the erasure tier's degraded-read worst case)."""
    blob = bytes(range(256)) * ((share_size * (groups + k)) // 256 + 1)
    ops = 0
    for g in range(groups):
        data = [blob[(g + s) * share_size:(g + s + 1) * share_size]
                for s in range(k)]
        shares = data + _ecmod.encode(k, n, data)
        dead = {(g + j) % n for j in range(n - k)}
        held = {i: shares[i] for i in range(n) if i not in dead}
        if _ecmod.decode(k, n, held) != data:
            raise RuntimeError("erasure roundtrip mismatch")
        ops += n + len(dead)
    return ops


def bench_repair_storm(n_files: int = 6, writes_per_file: int = 4) -> int:
    """End-to-end crash → detect → rebuild → restripe cycle.

    An erasure cluster payload-writes a batch of files, one share
    server fail-stops, and the kernel runs until the repair episode has
    rebuilt every lost share and restriped the files; returns groups
    rebuilt. Exercises detection polling, the repair client's scheduled
    share traffic, and the fs reconstruction path together.
    """
    cluster = Cluster(ClusterConfig(
        n_servers=6, policy="job-fair", erasure=(3, 5), repair=True,
        repair_detect_interval=0.1, stripe_size=256 * KiB,
        server=ServerConfig(bandwidth=1 * GB, n_workers=4)))
    cluster.fs.makedirs("/fs/data")
    engine = cluster.engine
    client = cluster.add_client(JobInfo(job_id=1, user="u0", size=1))
    payload = bytes(range(256)) * (MiB // 256)
    done: Dict[str, bool] = {}

    def driver():
        for i in range(n_files):
            path = f"/fs/data/f{i}"
            yield from client.create(path)
            for w in range(writes_per_file):
                yield from client.write(path, w * MiB, MiB,
                                        payload=payload)
        dead = cluster.fs.lookup("/fs/data/f0").stripe.servers[0]
        cluster.crash_server(dead)
        while not cluster.repair.episodes:
            yield engine.timeout(0.05)
        done["ok"] = True
        engine.request_stop()

    engine.process(driver())
    cluster.run(until=3600.0)
    summary = cluster.repair.summary()
    if not done or summary["groups_lost"]:
        raise RuntimeError(f"repair storm failed: {summary}")
    return summary["groups_repaired"] + summary["groups_clean"]


def bench_scheduler_dequeue_scale(n_jobs: int = 4096,
                                  draws: int = 8192) -> int:
    """Churny dequeue over an *n_jobs*-deep backlog.

    Every job starts backlogged with one request; each cycle pops a
    request (emptying that job's queue — a backlog-membership change)
    and refills the same job (another change). The exact path rebuilds
    its restricted assignment on every draw in this regime, so its
    per-op cost is O(n); the sampled path's is O(log n).
    """
    policy = Policy.parse("job-fair")
    rng = RngRegistry(0).stream("bench.scheduler_dequeue_scale")
    scheduler = StatisticalTokenScheduler(policy, rng)
    scheduler.on_jobs_changed(_jobs(n_jobs), 0.0)
    for i in range(n_jobs):
        scheduler.enqueue(_Req(i), 0.0)
    for _ in range(draws):
        request = scheduler.dequeue(0.0)
        scheduler.enqueue(_Req(request.job_id), 0.0)
    return draws


def bench_lambda_sync_delta(n_servers: int = 16,
                            epochs: int = 24) -> Dict[str, float]:
    """λ-sync epochs over a populated, churn-light table.

    Every server starts knowing the same 48 jobs; after the first
    scatter converges the cluster, each epoch's merged table is almost
    unchanged, so delta pushes shrink to near-empty while the nominal
    (timing-bearing) wire size still covers the full table. Reports the
    epoch rate plus nominal vs effective payload bytes.
    """
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=1)))
    for server in cluster.servers.values():
        for info in _jobs(48):
            server.monitor.table.observe(info, 0.0)
    interval = cluster.config.server.sync_interval
    t0 = time.perf_counter()
    cluster.run(until=(epochs + 0.5) * interval)
    wall = time.perf_counter() - t0
    fabric = cluster.fabric
    saved = fabric.bytes_sent - fabric.payload_bytes_sent
    return {
        "wall_s": round(wall, 6),
        "ops": epochs,
        "ops_per_s": round(epochs / wall, 1),
        "nominal_bytes": fabric.bytes_sent,
        "payload_bytes": fabric.payload_bytes_sent,
        "delta_saved_bytes": saved,
        "delta_saved_frac": round(saved / fabric.bytes_sent, 4)
        if fabric.bytes_sent else 0.0,
    }


def bench_sync_ladder(n_servers: int = 16, mode: str = "flat",
                      fanout: int = 8, epochs: int = 6,
                      quiescence: bool = False) -> Dict:
    """λ-sync cost of one cluster size under the flat vs tree layout.

    Every server starts knowing the same 48 jobs (converged, churn-free
    tables), so the measured traffic is the protocol's steady-state
    floor. The reported numbers are sim-deterministic wire/fan-in
    metrics, not host timings: ``root_in_bytes_per_epoch`` is the
    gather payload absorbed by each epoch's driving node (the fan-in
    hotspot — linear in N for the flat round, bounded by ``fanout``
    times the table size for the tree), ``max_fanin`` the peak number
    of gather replies any node awaited at once.
    """
    tree = mode == "tree"
    cluster = Cluster(ClusterConfig(
        n_servers=n_servers, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=1,
                            client_pool_workers=1,
                            sync_tree_fanout=fanout if tree else 0,
                            sync_quiescence_skip=quiescence)))
    for server in cluster.servers.values():
        for info in _jobs(48):
            server.monitor.table.observe(info, 0.0)
    interval = cluster.config.server.sync_interval
    cluster.run(until=(epochs + 0.5) * interval)
    stats = cluster.sync_stats()
    driven = max(1, stats["coordinated_rounds"])
    fabric = cluster.fabric
    return {
        "n_servers": n_servers,
        "mode": mode,
        "fanout": fanout if tree else 0,
        "epochs": stats["coordinated_rounds"],
        "root_in_bytes_per_epoch":
            round(stats["coord_gather_payload_bytes"] / driven),
        "payload_bytes_per_epoch":
            round(fabric.payload_bytes_sent / driven),
        "messages_per_epoch": round(fabric.messages_sent / driven),
        "max_fanin": stats["max_gather_fanin"],
        "quiescent_skips": stats["quiescent_skips"],
    }


def bench_contended_lock_fanout(n_waiters: int = 512,
                                rounds: int = 4000) -> int:
    """One write-lock release against *n_waiters* parked range waiters.

    Waiters park on disjoint byte ranges of one inode; a holder cycles
    lock/release over one waiter's range per round. A range-indexed
    release wakes exactly the one conflicting waiter; the wake-all path
    wakes all of them and every loser re-parks — O(n) wakeups per
    release. Woken waiters re-register, as the server worker loop does.
    """
    woken_log = []

    class _Waiter:
        __slots__ = ("key",)

        def __init__(self, key):
            self.key = key

        def succeed(self):
            woken_log.append(self.key)

    table = RangeLockTable()
    for i in range(n_waiters):
        table.wait(1, _Waiter(i), i * 2048, 1024, owner=i)
    holder = object()
    for r in range(rounds):
        i = r % n_waiters
        table.try_lock_write(1, i * 2048, 1024, holder)
        woken_log.clear()
        table.unlock_write(1, holder)
        for key in woken_log:  # losers retry, fail, and re-park (FIFO)
            table.wait(1, _Waiter(key), key * 2048, 1024, owner=key)
    return rounds


def bench_gift_quiescent_epochs(n_jobs: int = 256,
                                epochs: int = 2000) -> int:
    """GIFT boundaries over a large idle population.

    One short burst primes budgets and coupons, then every boundary is
    quiescent: the forecasting path advances it with coupon accrual
    only, while the full path re-sorts the job set and rebuilds demand
    and budget tables for all *n_jobs* each time.
    """
    sched = GiftScheduler(capacity=100.0, mu=1.0)
    sched.on_jobs_changed(_jobs(n_jobs), 0.0)
    now = 0.0
    sched.enqueue(_Req(1, 5.0), now)
    while sched.dequeue(now) is not None:
        pass
    for _ in range(epochs):
        now += 1.0  # lint: disable=PERF102 -- sim-clock step, not a float sum
        sched.dequeue(now)
    return epochs


def bench_engine_timer_churn(n_timers: int = 20_000, waves: int = 10) -> int:
    """Batch-cancel storms through the tombstone machinery.

    Each wave schedules a keeper plus *n_timers* doomed timeouts just
    past it, cancels the doomed en masse (O(1) marks), and advances the
    clock over the wave: the dead heads trip the majority-threshold
    compaction, so the corpses are dropped in one O(n) rebuild instead
    of firing one by one. One op = one schedule+cancel pair.
    """
    engine = Engine()
    horizon = 0.0
    for _ in range(waves):
        horizon += 1.0  # lint: disable=PERF102 -- sim-clock step, not a float sum
        engine.timeout(horizon)  # keeper: each wave pops something live
        doomed = [engine.timeout(horizon + 0.5) for _ in range(n_timers)]
        for timer in doomed:
            timer.cancel()
        engine.run(until=horizon + 0.75)
    return waves * n_timers


#: rpc_timeout_churn expiry horizon: far enough out that every reply
#: beats its timer, so all n timers are garbage by the churn phase.
_CHURN_EXPIRY = 3600.0


def bench_rpc_timeout_churn(n_calls: int = 100_000) -> Dict[str, float]:
    """The expiry-timer garbage left by *n_calls* outstanding timed RPCs.

    Phase 1 (``issue_wall_s``) pumps *n_calls* concurrent
    ``RpcClient.call(..., timeout=)`` requests through the real UCX/RPC
    stack against an echo server; every reply wins its race, so by the
    end the event queue holds up to *n_calls* expiry-timer corpses.
    Phase 2 (``wall_s``, the reported rate) runs the engine to empty:
    the cost of carrying and retiring that garbage. With cancellation
    on, one compaction drops the corpses wholesale; with it off (the
    sweep's exact side) every timer is heap-popped and fired as a
    no-op. One op = one expiry timer retired.
    """
    engine = Engine()
    fabric = Fabric(engine, latency=0.001, link_bandwidth=1e9)
    client_worker = UCPContext(engine, fabric, "cn").create_worker("cw")
    server_worker = UCPContext(engine, fabric, "sn").create_worker("sw")
    RpcServer(server_worker, lambda req: req.reply("ok"))
    client = RpcClient(client_worker, server_worker.address)
    finished = []

    def caller():
        pending = [client.call("op", size=64, timeout=_CHURN_EXPIRY)
                   for _ in range(n_calls)]
        yield engine.all_of(pending)
        finished.append(engine.now)

    engine.process(caller())
    t0 = time.perf_counter()
    engine.run(until=_CHURN_EXPIRY / 2)
    t1 = time.perf_counter()
    assert finished and client.in_flight == 0, "calls did not all complete"
    census = engine.stats()  # peak garbage, before the drain
    engine.run()
    t2 = time.perf_counter()
    churn = t2 - t1
    stats = engine.stats()
    return {
        "wall_s": round(churn, 6),
        "issue_wall_s": round(t1 - t0, 6),
        "ops": n_calls,
        "ops_per_s": round(n_calls / churn, 1),
        "dead_at_peak": census["dead_pending"],
        "cancelled_total": stats["cancelled_total"],
        "compactions": stats["compactions"],
    }


def bench_heartbeat_storm(n_clients: int = 4096,
                          until: float = 0.4) -> int:
    """*n_clients* fault-tolerant clients heartbeating two servers.

    Every beat is a fire-and-forget timed call whose reply cancels the
    expiry timer; halfway through, half the fleet disconnects abruptly,
    cancelling the parked inter-beat sleeps (the ``_stop_heartbeat``
    path). One op = one simulation event scheduled.
    """
    cluster = Cluster(ClusterConfig(
        n_servers=2, policy="job-fair",
        client=ClientConfig(rpc_timeout=1.0, heartbeat_interval=0.05),
        server=ServerConfig(bandwidth=1 * GB, n_workers=1)))
    engine = cluster.engine
    clients = []

    def app(client):
        yield from client.register_all()

    for i in range(n_clients):
        client = cluster.add_client(
            JobInfo(job_id=i + 1, user=f"u{i % 8}", size=1))
        clients.append(client)
        engine.process(app(client))

    def churn():
        yield engine.timeout(until / 2)
        for client in clients[::2]:
            client.disconnect()

    engine.process(churn())
    cluster.run(until=until)
    return engine._seq  # total events ever scheduled


def _bench_system(contended: bool, n_writes: int) -> Dict[str, float]:
    """A representative 3-job system run on one 4-worker server.

    *contended*: every write targets the same byte range of one shared
    file (worst-case writer-vs-writer lock conflicts); otherwise each
    job writes its own region (lock-free data path).
    """
    cluster = Cluster(ClusterConfig(
        n_servers=1, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=4)))
    cluster.fs.makedirs("/fs/data")
    path = "/fs/data/shared"
    engine = cluster.engine

    def app(client, idx):
        yield from client.create(path)
        offset = 0 if contended else idx * 64 * MB
        for _ in range(n_writes):
            yield from client.write(path, offset, 4 * MB)

    apps = []
    for idx in range(3):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx}", size=1))
        apps.append(engine.process(app(client, idx)))

    def stop_when_done():
        yield engine.all_of(apps)
        engine.request_stop()

    engine.process(stop_when_done())
    t0 = time.perf_counter()
    cluster.run(until=3600.0)
    wall = time.perf_counter() - t0
    served = sum(s.served_requests for s in cluster.servers.values())
    events = engine._seq  # total events ever scheduled
    return {
        "wall_s": round(wall, 6),
        "ops": served,
        "ops_per_s": round(served / wall, 1),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "sim_time_s": round(engine.now, 6),
    }


# ------------------------------------------------------------------ driver
# (git_rev is repro.harness.workspace.code_rev, re-exported: bench
# artifacts and workspace store keys must agree on the revision string.)
def run_all(quick: bool) -> Dict[str, Dict[str, float]]:
    """Run every kernel; returns ``{kernel: timing dict}``."""
    # Best-of-N is the reported rate; full mode uses enough rounds that
    # scheduler-noise on a shared host cannot masquerade as regression.
    rounds = 3 if quick else 15
    writes = 60 if quick else 200
    results = {
        "scheduler_enqueue_dequeue":
            _time_kernel(bench_scheduler_enqueue_dequeue, rounds),
        "token_draw": _time_kernel(bench_token_draw, rounds),
        "policy_shares_composite":
            _time_kernel(bench_policy_shares_composite, rounds),
        "engine_timeout_churn":
            _time_kernel(bench_engine_timeout_churn, rounds),
        "lambda_sync_round":
            _time_kernel(bench_lambda_sync_round, min(rounds, 3)),
        "gift_epoch": _time_kernel(bench_gift_epoch, min(rounds, 3)),
        "fs_write_path": _time_kernel(bench_fs_write_path, rounds),
        "erasure_encode_decode": _time_kernel(
            lambda: bench_erasure_encode_decode(
                groups=12 if quick else 24), rounds),
        "repair_storm": _time_kernel(
            lambda: bench_repair_storm(n_files=3 if quick else 6),
            min(rounds, 3)),
        "system_contended_write": _bench_system(True, writes),
        "system_disjoint_write": _bench_system(False, writes),
        # Scale-regime kernels: quick mode shrinks the populations so
        # the CI smoke job still covers the code paths cheaply.
        "scheduler_dequeue_4k_jobs": _time_kernel(
            lambda: bench_scheduler_dequeue_scale(
                n_jobs=512 if quick else 4096,
                draws=2048 if quick else 8192),
            min(rounds, 3)),
        "lambda_sync_delta_n16": bench_lambda_sync_delta(
            n_servers=8 if quick else 16,
            epochs=12 if quick else 24),
        "contended_lock_fanout": _time_kernel(
            lambda: bench_contended_lock_fanout(
                n_waiters=128 if quick else 512,
                rounds=1000 if quick else 4000),
            min(rounds, 3)),
        "gift_quiescent_epochs": _time_kernel(
            lambda: bench_gift_quiescent_epochs(
                n_jobs=64 if quick else 256,
                epochs=500 if quick else 2000),
            min(rounds, 3)),
        # Event-queue kernels (ISSUE 10): the cancellation/compaction
        # machinery under timer-heavy churn.
        "engine_timer_churn": _time_kernel(
            lambda: bench_engine_timer_churn(
                n_timers=2_000 if quick else 20_000),
            min(rounds, 3)),
        "rpc_timeout_churn": bench_rpc_timeout_churn(
            10_000 if quick else 100_000),
        "heartbeat_storm_n4096": _time_kernel(
            lambda: bench_heartbeat_storm(256 if quick else 4096), 1),
    }
    return results


# ------------------------------------------------------------- scale sweep
#: kernel name -> (factory(population) -> op-counting callable,
#:                 fast-path toggle setter, population ladder).
_SCALE_SWEEP = {
    "scheduler_dequeue": (
        lambda n: (lambda: bench_scheduler_dequeue_scale(n_jobs=n,
                                                         draws=4096)),
        _schedmod.set_sampled_dequeue_enabled,
        (256, 1024, 4096),
    ),
    "contended_lock_fanout": (
        lambda n: (lambda: bench_contended_lock_fanout(n_waiters=n,
                                                       rounds=2000)),
        _lockmod.set_range_wake_enabled,
        (64, 256, 1024),
    ),
    # Same fanout workload, but toggling only the bucket index that
    # accelerates conflict-candidate selection *within* range-indexed
    # wakeups (range wake itself stays on for both sides).
    "lock_waiter_index": (
        lambda n: (lambda: bench_contended_lock_fanout(n_waiters=n,
                                                       rounds=2000)),
        _lockmod.set_waiter_index_enabled,
        (64, 256, 1024),
    ),
    "gift_quiescent_epochs": (
        lambda n: (lambda: bench_gift_quiescent_epochs(n_jobs=n,
                                                       epochs=1000)),
        _giftmod.set_gift_quiescence_enabled,
        (64, 256, 1024),
    ),
}


def bench_scale_cell(config: Dict) -> Dict:
    """One (kernel, population) cell of the scale sweep: the kernel's
    ops/s with its fast path toggled on and off (sweep point kind
    ``bench_scale``). Config keys: ``kernel``, ``population``, optional
    ``rounds`` (5)."""
    kernel = str(config["kernel"])
    try:
        factory, toggle, _ladder = _SCALE_SWEEP[kernel]
    except KeyError:
        from .errors import ReproError
        raise ReproError(f"unknown scale kernel {kernel!r}; known: "
                         f"{', '.join(sorted(_SCALE_SWEEP))}") from None
    fn = factory(int(config["population"]))
    rounds = int(config.get("rounds", 5))
    try:
        toggle(True)
        fast = _time_kernel(fn, rounds)["ops_per_s"]
        toggle(False)
        exact = _time_kernel(fn, rounds)["ops_per_s"]
    finally:
        toggle(True)
    return {"population": int(config["population"]),
            "fast_ops_per_s": fast,
            "exact_ops_per_s": exact,
            "speedup": round(fast / exact, 2) if exact else 0.0}


def bench_timer_churn_cell(config: Dict) -> Dict:
    """One population point of the timeout-churn sweep (sweep point
    kind ``bench_timer_churn``): the churn-phase rate of
    :func:`bench_rpc_timeout_churn` with cancellation on (fast) vs off
    (the heap-with-dead-timers baseline). Config keys: ``population``
    (outstanding calls), optional ``rounds`` (3)."""
    population = int(config["population"])
    rounds = int(config.get("rounds", 3))

    def best_wall(cancel: bool) -> float:
        _procmod.set_cancel_enabled(cancel)
        try:
            return min(bench_rpc_timeout_churn(population)["wall_s"]
                       for _ in range(rounds))
        finally:
            _procmod.set_cancel_enabled(True)

    fast_wall = best_wall(True)
    exact_wall = best_wall(False)
    return {"population": population,
            "fast_ops_per_s": round(population / fast_wall, 1),
            "exact_ops_per_s": round(population / exact_wall, 1),
            "speedup": round(exact_wall / fast_wall, 2)}


def bench_sync_cell(config: Dict) -> Dict:
    """One (cluster size, layout) point of the sync-cost ladder (sweep
    point kind ``bench_sync``). Sim-deterministic wire metrics — see
    :func:`bench_sync_ladder`. Config keys: ``n_servers``, ``mode``
    (``flat``/``tree``), optional ``fanout`` (8), ``epochs`` (6),
    ``quiescence`` (False)."""
    row = bench_sync_ladder(
        n_servers=int(config["n_servers"]), mode=str(config["mode"]),
        fanout=int(config.get("fanout", 8)),
        epochs=int(config.get("epochs", 6)),
        quiescence=bool(config.get("quiescence", False)))
    row["population"] = row["n_servers"]
    return row


def bench_lambda_delta_cell(config: Dict) -> Dict:
    """One cluster-size point of the λ-sync delta sweep (sweep point
    kind ``bench_lambda_delta``). The reported wire bytes are
    sim-deterministic, unlike the host-timing rates of
    :func:`bench_scale_cell`. Config keys: ``n_servers``, optional
    ``epochs`` (12)."""
    r = bench_lambda_sync_delta(n_servers=int(config["n_servers"]),
                                epochs=int(config.get("epochs", 12)))
    return {"population": int(config["n_servers"]),
            "nominal_bytes": int(r["nominal_bytes"]),
            "payload_bytes": int(r["payload_bytes"]),
            "delta_saved_frac": float(r["delta_saved_frac"])}


def run_scale_sweep(quick: bool = False, workspace=None, jobs: int = 1,
                    rerun: bool = False):
    """Each scale kernel across growing populations, fast path on/off.

    The op count per kernel is population-independent, so ops/s across
    the ladder directly exposes how per-op cost grows with population:
    a sublinear fast path holds its rate roughly flat while the exact
    path's rate decays ~linearly.

    Every (kernel, population) cell runs as an independent workspace
    point: with a ``workspace`` attached, cells already stored at this
    code revision are cache hits (``rerun`` invalidates them first) and
    ``jobs > 1`` fans cold cells out over processes. Returns
    ``(sweep, run)``: the ``{kernel: rows}`` table plus the runner's
    :class:`~repro.harness.sweep.SweepRun` (hits/misses/speedup).
    """
    from .harness.sweep import ParallelRunner
    rounds = 2 if quick else 5
    points = []
    for name, (_factory, _toggle, ladder) in _SCALE_SWEEP.items():
        if quick:
            ladder = ladder[:2]
        for population in ladder:
            points.append(("bench_scale",
                           {"kernel": name, "population": int(population),
                            "rounds": rounds}))
    # Timeout churn: cancellation on vs the heap-with-dead-timers
    # baseline, across outstanding-call counts (ISSUE 10 acceptance:
    # >=2x at 10^5 outstanding).
    for population in ((10_000, 40_000) if quick
                       else (10_000, 40_000, 100_000)):
        points.append(("bench_timer_churn",
                       {"population": population,
                        "rounds": 2 if quick else 3}))
    # λ-sync delta: the fast path changes wire accounting, not host
    # time, so its sweep reports payload savings across cluster sizes.
    for n_servers in ((4, 8) if quick else (4, 8, 16)):
        points.append(("bench_lambda_delta",
                       {"n_servers": n_servers, "epochs": 12}))
    # Server-count ladder, flat vs tree (ISSUE 8): coordinator-inbound
    # gather bytes per epoch stay ~linear in N for the flat round and
    # go sublinear under the aggregation tree. Also sim-deterministic.
    for n_servers in ((16, 64) if quick else (16, 64, 256, 1024)):
        for mode in ("flat", "tree"):
            points.append(("bench_sync",
                           {"n_servers": n_servers, "mode": mode,
                            "fanout": 8, "epochs": 4 if quick else 6}))
    if not quick:
        # One quiescent pair shows the whole-round skip collapsing the
        # steady-state floor to probe-sized traffic.
        for mode in ("flat", "tree"):
            points.append(("bench_sync",
                           {"n_servers": 64, "mode": mode, "fanout": 8,
                            "epochs": 6, "quiescence": True}))
    run = ParallelRunner(workspace=workspace, jobs=jobs).run_points(
        points, rerun=rerun)
    sweep: Dict[str, list] = {}
    for outcome in run.points:
        if outcome.kind == "bench_scale":
            sweep.setdefault(outcome.config["kernel"],
                             []).append(dict(outcome.result))
        elif outcome.kind == "bench_timer_churn":
            sweep.setdefault("rpc_timeout_churn",
                             []).append(dict(outcome.result))
        elif outcome.kind == "bench_sync":
            sweep.setdefault("lambda_sync_ladder",
                             []).append(dict(outcome.result))
        else:
            sweep.setdefault("lambda_sync_delta",
                             []).append(dict(outcome.result))
    return sweep, run


def run_and_write_sweep(quick: bool = False, out: Optional[str] = None,
                        workspace=None, jobs: int = 1,
                        rerun: bool = False) -> int:
    """Run the scale sweep, print the table, write ``SWEEP_<rev>.json``."""
    rev = git_rev()
    sweep, run = run_scale_sweep(quick, workspace=workspace, jobs=jobs,
                                 rerun=rerun)
    payload = {
        "rev": rev,
        "quick": quick,
        # lint: disable=DET003 -- host metadata stamp in bench output, not sim state
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "sweep": sweep,
    }
    out = out or f"SWEEP_{rev}.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, rows in sweep.items():
        print(f"\n{name}")
        for row in rows:
            if "speedup" in row:
                print(f"  n={row['population']:>5}  "
                      f"fast {row['fast_ops_per_s']:>12,.0f} ops/s  "
                      f"exact {row['exact_ops_per_s']:>12,.0f} ops/s  "
                      f"speedup {row['speedup']:.2f}x")
            elif "root_in_bytes_per_epoch" in row:
                tag = row["mode"] + ("+skip" if row.get("quiescent_skips")
                                     else "")
                print(f"  n={row['population']:>5}  {tag:<9s}  "
                      f"root-in {row['root_in_bytes_per_epoch']:>10,} "
                      f"B/epoch  total {row['payload_bytes_per_epoch']:>10,} "
                      f"B/epoch  fan-in {row['max_fanin']}")
            else:
                print(f"  n={row['population']:>5}  "
                      f"nominal {row['nominal_bytes']:>12,} B  "
                      f"payload {row['payload_bytes']:>12,} B  "
                      f"saved {row['delta_saved_frac']:.1%}")
    print()
    print(run.summary())
    print(f"\nwrote {out}")
    return 0


def run_and_write(quick: bool = False, out: Optional[str] = None) -> int:
    """Run every kernel and write ``BENCH_<rev>.json``; returns exit code."""
    rev = git_rev()
    results = run_all(quick)
    payload = {
        "rev": rev,
        "quick": quick,
        # lint: disable=DET003 -- host metadata stamp in bench output, not sim state
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "results": results,
    }
    out = out or f"BENCH_{rev}.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, r in results.items():
        rate = r.get("ops_per_s", 0.0)
        print(f"{name:32s} {rate:>14,.0f} ops/s   wall {r['wall_s']:.4f}s")
    print(f"wrote {out}")
    return 0


def main(argv=None) -> int:
    """Standalone entry point (``python -m repro bench`` wraps this)."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds / smaller system run (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<rev>.json in cwd)")
    parser.add_argument("--scale-sweep", action="store_true",
                        help="sweep the scale-regime kernels across "
                             "populations with fast paths on/off")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel workers for cold sweep cells")
    parser.add_argument("--workspace", default=".workspace",
                        help="content-addressed result store directory")
    parser.add_argument("--no-workspace", action="store_true",
                        help="compute every sweep cell, bypassing the store")
    parser.add_argument("--rerun", action="store_true",
                        help="invalidate stored sweep cells before running")
    args = parser.parse_args(argv)
    if args.scale_sweep:
        from .harness.workspace import Workspace
        ws = None if args.no_workspace else Workspace(args.workspace)
        return run_and_write_sweep(quick=args.quick, out=args.out,
                                   workspace=ws, jobs=args.jobs,
                                   rerun=args.rerun)
    return run_and_write(quick=args.quick, out=args.out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
