"""UCX-like communication layer (§4.2 of the paper).

Mirrors the structure ThemisIO builds on UCX: each node owns a
:class:`UCPContext`; communication happens through named
:class:`UCPWorker` objects (a worker represents a local communication
resource plus its progress engine). Servers keep two worker pools — one
for client↔server traffic and one for server↔server synchronisation — and
map each connected client to a worker; a worker may be shared by many
clients. Mappings are destroyed when a client exits or its job goes
inactive, exactly as §4.2 describes.

Addressing: a worker's address is ``(node_name, worker_name)``. The
context runs one dispatcher process per node that routes inbox messages
to workers; workers deliver by *tag*, either to a registered push handler
or to a matching pending ``recv``.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from ..errors import UCXError
from ..net.fabric import Fabric
from ..net.message import Message
from ..sim.process import Event

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.engine import Engine

__all__ = ["UCPContext", "UCPWorker", "Endpoint", "WorkerPool", "Address"]

Address = Tuple[str, str]  # (node_name, worker_name)


class UCPContext:
    """Per-node UCX context: owns workers and dispatches inbound messages."""

    def __init__(self, engine: "Engine", fabric: Fabric, node_name: str):
        self.engine = engine
        self.fabric = fabric
        self.node_name = node_name
        if not fabric.has_node(node_name):
            fabric.add_node(node_name)
        self.workers: Dict[str, UCPWorker] = {}
        # Ring of the most recent drops (closed/unknown worker, or node
        # down); bounded so long degraded runs don't leak memory. Tests
        # assert on the total via dropped_count.
        self.dropped: Deque[Message] = deque(maxlen=64)
        self.dropped_count = 0
        #: crash flag: while True the dispatcher drops everything.
        self.down = False
        self._dispatcher = engine.process(self._dispatch())

    def create_worker(self, name: str) -> "UCPWorker":
        """Create a named worker on this node (names unique per node)."""
        if name in self.workers:
            raise UCXError(f"worker {name!r} already exists on {self.node_name!r}")
        worker = UCPWorker(self, name)
        self.workers[name] = worker
        return worker

    def _dispatch(self):
        inbox = self.fabric.inbox(self.node_name)
        while True:
            msg = yield inbox.get()
            worker = self.workers.get(msg.worker)
            if self.down or worker is None or worker.closed:
                self.dropped.append(msg)
                self.dropped_count += 1
                continue
            worker._deliver(msg)


class UCPWorker:
    """A UCP worker: endpoint factory plus tag-matched message delivery."""

    def __init__(self, context: UCPContext, name: str):
        self.context = context
        self.name = name
        self.closed = False
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._queues: Dict[str, Deque[Message]] = {}
        self._recvers: Dict[str, Deque[Event]] = {}

    @property
    def address(self) -> Address:
        return (self.context.node_name, self.name)

    @property
    def engine(self) -> "Engine":
        return self.context.engine

    def create_endpoint(self, remote: Address) -> "Endpoint":
        """Connect this worker to a remote worker address."""
        self._check_open()
        return Endpoint(self, remote)

    # ------------------------------------------------------------- receiving
    def on(self, tag: str, handler: Callable[[Message], None]) -> None:
        """Register a push handler for *tag*; drains any queued messages."""
        self._check_open()
        if tag in self._handlers:
            raise UCXError(f"handler for tag {tag!r} already registered")
        self._handlers[tag] = handler
        queued = self._queues.pop(tag, None)
        if queued:
            for msg in queued:
                handler(msg)

    def off(self, tag: str) -> None:
        """Remove the push handler for *tag* (no-op if absent)."""
        self._handlers.pop(tag, None)

    def recv(self, tag: str) -> Event:
        """Event delivering the next message with *tag* (pull style)."""
        self._check_open()
        ev = Event(self.engine)
        queue = self._queues.get(tag)
        if queue:
            ev.succeed(queue.popleft())
        else:
            self._recvers.setdefault(tag, deque()).append(ev)
        return ev

    def _deliver(self, msg: Message) -> None:
        handler = self._handlers.get(msg.tag)
        if handler is not None:
            handler(msg)
            return
        recvers = self._recvers.get(msg.tag)
        if recvers:
            recvers.popleft().succeed(msg)
            return
        self._queues.setdefault(msg.tag, deque()).append(msg)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Destroy the worker; subsequent traffic to it is dropped."""
        self.closed = True
        self.context.workers.pop(self.name, None)

    def _check_open(self) -> None:
        if self.closed:
            raise UCXError(f"worker {self.name!r} is closed")

    def __repr__(self) -> str:  # pragma: no cover
        return f"<UCPWorker {self.context.node_name}/{self.name}>"


class Endpoint:
    """A connection from a local worker to a remote worker address."""

    def __init__(self, worker: UCPWorker, remote: Address):
        self.worker = worker
        self.remote = remote

    def send(self, tag: str, payload=None, size: int = 0,
             payload_bytes=None) -> Event:
        """Send a tagged message; the event fires on remote enqueue.

        ``payload_bytes`` optionally records the effective wire bytes
        after payload-level encoding (see :class:`~repro.net.message.Message`).
        """
        self.worker._check_open()
        node, worker_name = self.remote
        msg = Message(
            src=self.worker.context.node_name,
            dst=node,
            tag=tag,
            payload=payload,
            size=size,
            worker=worker_name,
            payload_bytes=payload_bytes,
        )
        return self.worker.context.fabric.send(msg)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Endpoint {self.worker.address} -> {self.remote}>"


class WorkerPool:
    """Server-side pool of UCP workers shared among clients (§4.2).

    ``assign(client_id)`` returns the worker mapped to that client,
    creating the mapping round-robin on first contact; ``release``
    destroys the mapping (client exit or job inactivation). The workers
    themselves are persistent for the lifetime of the server.
    """

    def __init__(self, context: UCPContext, prefix: str, n_workers: int):
        if n_workers < 1:
            raise UCXError("pool needs at least one worker")
        self.workers = [context.create_worker(f"{prefix}{i}") for i in range(n_workers)]
        self._mapping: Dict[str, UCPWorker] = {}
        self._next = 0

    def assign(self, client_id: str) -> UCPWorker:
        """The worker mapped to *client_id*, created round-robin on first use."""
        worker = self._mapping.get(client_id)
        if worker is None:
            worker = self.workers[self._next % len(self.workers)]
            self._next += 1
            self._mapping[client_id] = worker
        return worker

    def lookup(self, client_id: str) -> Optional[UCPWorker]:
        """The worker mapped to *client_id*, or None."""
        return self._mapping.get(client_id)

    def release(self, client_id: str) -> bool:
        """Destroy the client's mapping entry; True if one existed."""
        return self._mapping.pop(client_id, None) is not None

    def release_many(self, client_ids) -> int:
        """Release several client mappings; returns how many existed."""
        return sum(self.release(cid) for cid in list(client_ids))

    @property
    def mapped_clients(self) -> List[str]:
        return list(self._mapping)
