"""UCX-like communication substrate: UCP contexts/workers/endpoints + RPC."""

from .rpc import RpcClient, RpcRequest, RpcServer
from .ucp import Address, Endpoint, UCPContext, UCPWorker, WorkerPool

__all__ = [
    "UCPContext",
    "UCPWorker",
    "Endpoint",
    "WorkerPool",
    "Address",
    "RpcClient",
    "RpcServer",
    "RpcRequest",
]
