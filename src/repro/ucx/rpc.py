"""Request/response framing on top of UCP workers.

A thin RPC layer: clients issue tagged calls with correlation ids; the
server hands each inbound call to a request callback as an
:class:`RpcRequest`, which carries a ``reply()`` method. Replies may be
sent immediately or after arbitrary simulated processing — ThemisIO's
servers answer only after the scheduled I/O worker finishes the request,
so the reply path must be detachable from the receive path.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Optional

from ..errors import RpcTimeout, UCXError
from ..sim.process import Event
from .ucp import Address, Endpoint, UCPWorker

__all__ = ["RpcClient", "RpcServer", "RpcRequest"]

REQ_TAG = "rpc.req"
RESP_TAG = "rpc.resp"

_call_ids = itertools.count(1)


class RpcRequest:
    """An inbound call as seen by the server."""

    def __init__(self, server: "RpcServer", msg_payload: Dict[str, Any]):
        self._server = server
        self.op: str = msg_payload["op"]
        self.body: Any = msg_payload["body"]
        self.size: int = msg_payload["size"]
        self.cid: int = msg_payload["cid"]
        self.reply_to: Address = msg_payload["reply_to"]
        self.replied = False

    def reply(self, body: Any = None, size: int = 0,
              payload_bytes: Optional[int] = None) -> Event:
        """Send the response (once); the event fires on remote enqueue."""
        if self.replied:
            raise UCXError(f"duplicate reply to call {self.cid}")
        self.replied = True
        ep = self._server.worker.create_endpoint(self.reply_to)
        return ep.send(RESP_TAG, {"cid": self.cid, "body": body}, size=size,
                       payload_bytes=payload_bytes)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<RpcRequest op={self.op!r} cid={self.cid}>"


class RpcServer:
    """Dispatches inbound calls on a worker to *on_request*."""

    def __init__(self, worker: UCPWorker,
                 on_request: Callable[[RpcRequest], None]):
        self.worker = worker
        self.on_request = on_request
        worker.on(REQ_TAG, self._handle)
        self.calls_received = 0
        #: inbound calls per op name (protocol accounting: e.g. how many
        #: λ-sync pulls vs pushes a server answered).
        self.calls_by_op: Dict[str, int] = {}

    def _handle(self, msg) -> None:
        self.calls_received += 1
        op = msg.payload["op"]
        self.calls_by_op[op] = self.calls_by_op.get(op, 0) + 1
        self.on_request(RpcRequest(self, msg.payload))


class RpcClient:
    """Issues calls from a local worker to a remote RPC server."""

    def __init__(self, worker: UCPWorker, remote: Address):
        self.worker = worker
        self.endpoint: Endpoint = worker.create_endpoint(remote)
        self._pending: Dict[int, Event] = {}
        #: expiry timers for pending timed calls, cancelled when the
        #: response wins the race (keeps the event queue corpse-free
        #: under heavy call churn; see DESIGN.md §15).
        self._timers: Dict[int, Event] = {}
        #: calls whose timeout expired before the response arrived.
        self.timeouts = 0
        #: responses for calls no longer pending (late reply after a
        #: timeout, or a duplicate from a retried request).
        self.unmatched_responses = 0
        worker.on(RESP_TAG, self._on_response)

    def call(self, op: str, body: Any = None, size: int = 0,
             timeout: Optional[float] = None,
             payload_bytes: Optional[int] = None) -> Event:
        """Invoke *op* remotely; the event's value is the response body.

        ``size`` is the request's on-wire byte count (e.g. write payload
        bytes); response size is chosen by the server when replying.
        ``payload_bytes`` optionally records the effective wire bytes
        after payload-level encoding (accounting only; timing still
        follows ``size``).

        With *timeout* set, the event instead fails with
        :class:`~repro.errors.RpcTimeout` if no response arrives within
        that many seconds; a response that shows up later is discarded
        (counted in :attr:`unmatched_responses`).
        """
        cid = next(_call_ids)
        done = Event(self.worker.engine)
        self._pending[cid] = done
        self.endpoint.send(
            REQ_TAG,
            {
                "op": op,
                "body": body,
                "size": size,
                "cid": cid,
                "reply_to": self.worker.address,
            },
            size=size,
            payload_bytes=payload_bytes,
        )
        if timeout is not None:
            timer = self.worker.engine.timeout(timeout)
            timer.callbacks.append(
                lambda _ev: self._expire(cid, done, op, timeout))
            self._timers[cid] = timer
        return done

    def _expire(self, cid: int, done: Event, op: str,
                timeout: float) -> None:
        self._timers.pop(cid, None)
        # Only fail the call if it is still the pending one for this cid
        # (the response may have raced the timer).
        if self._pending.get(cid) is not done:
            return
        del self._pending[cid]
        self.timeouts += 1
        # Defuse first: a timed-out call nobody is waiting on must not
        # crash the kernel; waiters still get RpcTimeout thrown in.
        done.defuse()
        done.fail(RpcTimeout(
            f"call {cid} ({op!r}) to {self.endpoint.remote} timed out "
            f"after {timeout}s"))

    def _on_response(self, msg) -> None:
        cid = msg.payload["cid"]
        done = self._pending.pop(cid, None)
        if done is None:
            # Late response after a timeout (or a duplicate): drop it.
            self.unmatched_responses += 1
            return
        timer = self._timers.pop(cid, None)
        if timer is not None and not timer.processed:
            # The response won the race: the expiry timer is garbage now.
            # With cancellation off this is a no-op and the timer fires
            # into _expire, which finds the cid gone and returns.
            timer.cancel()
        done.succeed(msg.payload["body"])

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    def close(self) -> None:
        """Tear down the response handler (no further calls)."""
        self.worker.off(RESP_TAG)
