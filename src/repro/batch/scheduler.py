"""A batch scheduler driving the burst buffer with a realistic job stream.

FCFS with optional EASY-style backfill: jobs are started in submission
order when their node request fits; with backfill enabled, a smaller job
further down the queue may jump ahead as long as nodes are free (no
reservations — adequate for studying I/O-side effects, which is what
this layer exists for).

Each started job launches the usual burst-buffer machinery (clients on
its allocated nodes, workload streams); on completion it releases its
nodes, which may start queued jobs. Per-job wait/turnaround times and
the overall makespan are the outputs the cluster-level study compares
across burst-buffer policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..bb.cluster import Cluster
from ..errors import ConfigError, InterruptError
from ..workloads.base import JobSpec, Workload
from .allocator import NodePool

__all__ = ["BatchJob", "JobState", "BatchScheduler"]


class JobState(Enum):
    """Lifecycle of a batch job: pending -> running -> done."""
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"


@dataclass
class BatchJob:
    """One submission and its lifecycle record."""

    spec: JobSpec
    workload: Workload
    submit_time: float
    client_nodes: Optional[int] = None  # simulated client endpoints cap
    walltime: Optional[float] = None    # run-time limit for open-ended work
    state: JobState = JobState.PENDING
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    timed_out: bool = False             # killed at the walltime limit
    allocated: List[int] = field(default_factory=list)

    @property
    def wait_time(self) -> Optional[float]:
        return (None if self.start_time is None
                else self.start_time - self.submit_time)

    @property
    def turnaround(self) -> Optional[float]:
        return (None if self.end_time is None
                else self.end_time - self.submit_time)

    @property
    def runtime(self) -> Optional[float]:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time


class BatchScheduler:
    """FCFS(+backfill) batch scheduler bound to one burst-buffer cluster."""

    def __init__(self, cluster: Cluster, n_compute_nodes: int,
                 backfill: bool = True, base_dir: str = "/fs"):
        self.cluster = cluster
        self.pool = NodePool(n_compute_nodes)
        self.backfill = backfill
        self.base_dir = base_dir
        self.jobs: Dict[int, BatchJob] = {}
        self._queue: List[int] = []  # pending job ids, submission order
        cluster.fs.makedirs(base_dir)

    # -------------------------------------------------------------- submits
    def submit(self, spec: JobSpec, workload: Workload,
               submit_time: float = 0.0,
               client_nodes: Optional[int] = None,
               walltime: Optional[float] = None) -> BatchJob:
        """Register a job to arrive at *submit_time*.

        *walltime* bounds the run: open-ended workloads (benchmarks)
        stop when it expires, like a Slurm time limit.
        """
        if spec.job_id in self.jobs:
            raise ConfigError(f"duplicate job id {spec.job_id}")
        if spec.nodes > self.pool.n_nodes:
            raise ConfigError(
                f"job {spec.job_id} wants {spec.nodes} nodes; the machine "
                f"has {self.pool.n_nodes}")
        if walltime is not None and walltime <= 0:
            raise ConfigError(f"walltime must be positive: {walltime}")
        job = BatchJob(spec=spec, workload=workload, submit_time=submit_time,
                       client_nodes=client_nodes, walltime=walltime)
        self.jobs[spec.job_id] = job
        engine = self.cluster.engine

        def arrive():
            if submit_time > engine.now:
                yield engine.timeout(submit_time - engine.now)
            self._queue.append(spec.job_id)
            self._try_start()

        engine.process(arrive())
        return job

    # ------------------------------------------------------------- dispatch
    def _try_start(self) -> None:
        started = True
        while started:
            started = False
            for idx, job_id in enumerate(list(self._queue)):
                job = self.jobs[job_id]
                if self.pool.can_fit(job.spec.nodes):
                    self._queue.remove(job_id)
                    self._launch(job)
                    started = True
                    break
                if not self.backfill:
                    return  # strict FCFS: the head blocks the queue
                if idx == 0:
                    continue  # head doesn't fit; try backfilling smaller jobs

    def _launch(self, job: BatchJob) -> None:
        engine = self.cluster.engine
        job.allocated = self.pool.allocate(job.spec.job_id, job.spec.nodes)
        job.state = JobState.RUNNING
        job.start_time = engine.now
        prefix = f"{self.base_dir}/job{job.spec.job_id}"
        self.cluster.fs.makedirs(prefix)
        n_clients = job.client_nodes or min(job.spec.nodes, 4)

        stop = (engine.now + job.walltime
                if job.walltime is not None else None)

        def run_job():
            info = job.spec.info()
            clients = [self.cluster.add_client(
                info, client_id=f"batch-j{job.spec.job_id}n{i}")
                for i in range(n_clients)]
            streams = []
            for c_idx, client in enumerate(clients):
                for s_idx in range(job.workload.streams_per_node):
                    rng = self.cluster.rng.stream(
                        f"batch.j{job.spec.job_id}.c{c_idx}.s{s_idx}")
                    streams.append(engine.process(job.workload.run_stream(
                        engine, client, rng, prefix, s_idx, stop)))
            if job.walltime is not None:
                # Hard limit: streams still alive at the deadline are
                # killed, like a Slurm walltime cancellation.
                def enforcer():
                    yield engine.timeout(job.walltime)
                    for stream in streams:
                        if stream.is_alive:
                            job.timed_out = True
                            stream.defuse()
                            stream.interrupt("walltime exceeded")

                engine.process(enforcer())
            done = engine.all_of(streams)
            done.defuse()  # killed streams surface as timed_out, not a crash
            try:
                yield done
            except InterruptError:
                # Walltime kill: wait out the remaining stream teardowns.
                while any(stream.is_alive for stream in streams):
                    yield engine.timeout(1e-6)
            for client in clients:
                yield from client.goodbye()
            job.state = JobState.DONE
            job.end_time = engine.now
            self.pool.release(job.spec.job_id)
            self._try_start()

        engine.process(run_job())

    # --------------------------------------------------------------- results
    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation (delegates to the cluster engine)."""
        self.cluster.run(until=until)

    @property
    def all_done(self) -> bool:
        return all(job.state is JobState.DONE for job in self.jobs.values())

    def makespan(self) -> float:
        """Last completion minus first submission (requires all done)."""
        if not self.all_done:
            raise ConfigError("makespan undefined: jobs still pending/running")
        first = min(job.submit_time for job in self.jobs.values())
        last = max(job.end_time for job in self.jobs.values())
        return last - first

    def mean_turnaround(self) -> float:
        """Average submit-to-completion time across all jobs (requires all done)."""
        if not self.all_done:
            raise ConfigError("turnaround undefined: jobs still running")
        times = [job.turnaround for job in self.jobs.values()]
        return sum(times) / len(times)
