"""Batch-scheduling substrate: exclusive compute-node allocation and a
FCFS(+backfill) scheduler that drives the burst buffer with realistic
job arrival streams (the role Slurm plays on the paper's testbed)."""

from .allocator import NodePool
from .scheduler import BatchJob, BatchScheduler, JobState

__all__ = ["NodePool", "BatchScheduler", "BatchJob", "JobState"]
