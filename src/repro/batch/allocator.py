"""Compute-node allocation.

§2.2: "Most of today's supercomputers provide processing isolation for
computing resources by granting exclusive access to compute nodes.
However, such isolation does not exist in I/O resources." The batch
layer models the first half — exclusive node allocation — so the
burst-buffer layer can be studied under a realistic arrival stream of
whole jobs rather than hand-built scenarios.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..errors import ConfigError

__all__ = ["NodePool"]


class NodePool:
    """A fixed pool of compute nodes granted exclusively to jobs."""

    def __init__(self, n_nodes: int):
        if n_nodes < 1:
            raise ConfigError(f"n_nodes must be >= 1: {n_nodes}")
        self.n_nodes = int(n_nodes)
        self._free: List[int] = list(range(self.n_nodes))
        self._held: Dict[int, Set[int]] = {}  # job id -> node ids

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def busy_nodes(self) -> int:
        return self.n_nodes - len(self._free)

    def utilization(self) -> float:
        """Fraction of the machine's nodes currently allocated."""
        return self.busy_nodes / self.n_nodes

    def can_fit(self, nodes: int) -> bool:
        """True if *nodes* free nodes are available right now."""
        return nodes <= len(self._free)

    def allocate(self, job_id: int, nodes: int) -> Optional[List[int]]:
        """Grant *nodes* exclusive nodes to *job_id*; None if they don't fit."""
        if nodes < 1:
            raise ConfigError(f"nodes must be >= 1: {nodes}")
        if job_id in self._held:
            raise ConfigError(f"job {job_id} already holds an allocation")
        if nodes > len(self._free):
            return None
        granted = [self._free.pop() for _ in range(nodes)]
        self._held[job_id] = set(granted)
        return sorted(granted)

    def release(self, job_id: int) -> int:
        """Return a job's nodes to the pool; returns the count released."""
        held = self._held.pop(job_id, None)
        if held is None:
            raise ConfigError(f"job {job_id} holds no allocation")
        self._free.extend(sorted(held))
        return len(held)

    def holding(self, job_id: int) -> Set[int]:
        """The node ids currently granted to *job_id* (empty set if none)."""
        return set(self._held.get(job_id, set()))
