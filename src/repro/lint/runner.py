"""File discovery, rule execution, reporting, and the CLI.

``python -m repro lint [paths]`` walks the given files/directories,
runs every registered rule, subtracts inline waivers and the committed
baseline, and exits non-zero iff a *new* error- or warning-severity
finding remains. ``--write-baseline`` grandfathers the current state;
``--strict`` makes advisories fail too.
"""

from __future__ import annotations

import argparse
import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineError
from .core import Finding, Module, Rule, Severity, all_rules
from .waivers import collect_waivers, stale_waiver_findings

__all__ = ["LintResult", "lint_paths", "lint_source", "main",
           "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "LINT_BASELINE.json"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache",
              ".ruff_cache"}


def _discover(paths: Sequence[str]) -> List[str]:
    """All .py files under *paths* (files kept as-is), sorted."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(os.path.normpath(p) for p in found))


def path_scope(path: str) -> str:
    """"tests" for test files, else "src" (rules see every non-test file)."""
    norm = path.replace("\\", "/")
    parts = norm.split("/")
    if "tests" in parts or os.path.basename(norm).startswith("test_"):
        return "tests"
    return "src"


@dataclass
class LintResult:
    """Everything one run produced, pre-partitioned."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    waived_count: int = 0
    modules: Dict[str, Module] = field(default_factory=dict)

    def failures(self, strict: bool = False) -> List[Finding]:
        """New findings that fail the run (advisories only when *strict*)."""
        return [f for f in self.new if f.severity.fails or strict]

    @property
    def exit_code(self) -> int:
        return 1 if self.failures() else 0


def _parse_module(path: str, source: str) -> Tuple[Optional[Module],
                                                   Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule="LINT000", severity=Severity.ERROR, path=path,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"syntax error: {exc.msg}")
    return Module(path=path, source=source, tree=tree,
                  scope=path_scope(path)), None


def _run_rules(module: Module, rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    waivers, waiver_problems = collect_waivers(module)
    findings.extend(waiver_problems)
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(module):
            raw.extend(rule.check(module))
    kept = [f for f in raw if not waivers.suppresses(f)]
    module.waived = len(raw) - len(kept)  # type: ignore[attr-defined]
    findings.extend(kept)
    findings.extend(stale_waiver_findings(module, waivers))
    return findings


def lint_paths(paths: Sequence[str],
               baseline: Optional[Baseline] = None,
               select: Optional[Sequence[str]] = None) -> LintResult:
    """Lint every file under *paths* against the registered rules."""
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
    result = LintResult()
    findings: List[Finding] = []
    for path in _discover(paths):
        rel = os.path.relpath(path).replace("\\", "/")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(Finding(
                rule="LINT000", severity=Severity.ERROR, path=rel,
                line=1, col=0, message=f"cannot read file: {exc}"))
            continue
        module, parse_error = _parse_module(rel, source)
        if parse_error is not None:
            findings.append(parse_error)
            continue
        assert module is not None
        result.modules[rel] = module
        findings.extend(_run_rules(module, rules))
        result.waived_count += getattr(module, "waived", 0)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    baseline = baseline or Baseline()
    result.new, result.baselined = baseline.split(findings, result.modules)
    return result


def lint_source(source: str, path: str = "src/repro/snippet.py",
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Lint one in-memory snippet (the unit-test entry point).

    *path* controls rule scoping ("src" vs "tests") and exemptions.
    """
    module, parse_error = _parse_module(path, source)
    if parse_error is not None:
        return [parse_error]
    assert module is not None
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
    findings = _run_rules(module, rules)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _print_catalogue() -> None:
    for rule in all_rules():
        scopes = ",".join(rule.scopes)
        print(f"{rule.id}  [{rule.severity.value:8s}] ({scopes}) "
              f"{rule.title}")
        print(f"        {rule.rationale}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro lint``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based determinism & sim-safety analyzer "
                    "(same seed => same trace, enforced statically).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "if it exists)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings and exit 0")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--strict", action="store_true",
                        help="advisories also fail the run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalogue()
        return 0

    baseline_path = args.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None)
    if args.no_baseline:
        baseline_path = None
    try:
        baseline = Baseline.load_or_empty(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    select = [s.strip() for s in args.select.split(",")] if args.select \
        else None
    paths = args.paths or ["src"]
    result = lint_paths(paths, baseline=baseline, select=select)

    if args.write_baseline:
        out = args.baseline or DEFAULT_BASELINE
        all_findings = result.new + result.baselined
        Baseline.from_findings(all_findings, result.modules,
                               path=out).save()
        print(f"wrote {out} ({len(all_findings)} grandfathered findings)")
        return 0

    for finding in result.new:
        print(finding.render())
    for finding in result.baselined:
        print(f"{finding.render()}  [baselined]")

    errors = sum(1 for f in result.new if f.severity is Severity.ERROR)
    warnings = sum(1 for f in result.new if f.severity is Severity.WARNING)
    advisories = sum(1 for f in result.new
                     if f.severity is Severity.ADVISORY)
    print(f"{len(result.modules)} files: {errors} errors, "
          f"{warnings} warnings, {advisories} advisories "
          f"({len(result.baselined)} baselined, "
          f"{result.waived_count} waived)")
    failures = result.failures(strict=args.strict)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
