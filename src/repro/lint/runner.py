"""File discovery, rule execution, reporting, and the CLI.

``python -m repro lint [paths]`` walks the given files/directories and
runs two passes: the per-file rules (cached by content hash in
``.lint_cache/``), then the whole-program rules over a
:class:`~repro.lint.graph.ProjectIndex` built from every src-scope
file's semantic summary. Inline waivers and the committed baseline are
subtracted at the end — project findings anchor in ordinary files, so
both apply to them unchanged — and the run exits non-zero iff a *new*
error- or warning-severity finding remains. ``--write-baseline``
grandfathers the current state; ``--strict`` makes advisories fail
too; ``--format sarif|github`` renders CI-consumable output.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineError
from .cache import DEFAULT_CACHE_DIR, LintCache
from .core import Finding, Module, ProjectRule, Rule, Severity, all_rules
from .formats import FORMATS, to_github, to_sarif
from .graph import FileSummary, ProjectIndex, summarize_module
from .waivers import collect_waivers, stale_waiver_findings

__all__ = ["LintResult", "lint_paths", "lint_source", "main",
           "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "LINT_BASELINE.json"

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules", ".mypy_cache",
              ".ruff_cache", ".lint_cache", "fixtures"}


def _discover(paths: Sequence[str]) -> List[str]:
    """All .py files under *paths* (files kept as-is), sorted.

    Directories named ``fixtures`` are skipped during the walk: they
    hold deliberately-broken lint test beds. Passing a fixture
    directory *explicitly* still works — only the descent skips them.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in _SKIP_DIRS
                                 and not d.startswith("."))
            for name in sorted(filenames):
                if name.endswith(".py"):
                    found.append(os.path.join(dirpath, name))
    return sorted(dict.fromkeys(os.path.normpath(p) for p in found))


def path_scope(path: str) -> str:
    """"tests" for test files, else "src" (rules see every non-test file)."""
    norm = path.replace("\\", "/")
    parts = norm.split("/")
    if "tests" in parts or os.path.basename(norm).startswith("test_"):
        return "tests"
    return "src"


@dataclass
class LintResult:
    """Everything one run produced, pre-partitioned."""

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    waived_count: int = 0
    modules: Dict[str, Module] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def failures(self, strict: bool = False) -> List[Finding]:
        """New findings that fail the run (advisories only when *strict*)."""
        return [f for f in self.new if f.severity.fails or strict]

    @property
    def exit_code(self) -> int:
        return 1 if self.failures() else 0


def _parse_module(path: str, source: str) -> Tuple[Optional[Module],
                                                   Optional[Finding]]:
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return None, Finding(
            rule="LINT000", severity=Severity.ERROR, path=path,
            line=exc.lineno or 1, col=exc.offset or 0,
            message=f"syntax error: {exc.msg}")
    return Module(path=path, source=source, tree=tree,
                  scope=path_scope(path)), None


def _split_rules(rules: Sequence[Rule]) -> Tuple[List[Rule],
                                                 List[ProjectRule]]:
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    return file_rules, project_rules


def lint_paths(paths: Sequence[str],
               baseline: Optional[Baseline] = None,
               select: Optional[Sequence[str]] = None,
               cache: Optional[LintCache] = None) -> LintResult:
    """Lint every file under *paths* against the registered rules.

    Pass 1 runs the per-file rules and extracts each src-scope file's
    semantic summary (both served from *cache* when the content hash
    matches); pass 2 assembles the :class:`ProjectIndex` and runs the
    whole-program rules. Waivers, LINT001/002 meta-findings, and the
    baseline split happen after both passes so they see every finding.
    """
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
        cache = None    # cached artifacts always carry the full rule set
    file_rules, project_rules = _split_rules(rules)

    result = LintResult()
    findings: List[Finding] = []
    raw_by_path: Dict[str, List[Finding]] = {}
    summaries: List[FileSummary] = []

    for path in _discover(paths):
        rel = os.path.relpath(path).replace("\\", "/")
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            findings.append(Finding(
                rule="LINT000", severity=Severity.ERROR, path=rel,
                line=1, col=0, message=f"cannot read file: {exc}"))
            continue
        scope = path_scope(rel)
        cached = cache.load(rel, source) if cache is not None else None
        if cached is not None:
            raw, summary = cached
            module = Module(path=rel, source=source, tree=None, scope=scope)
        else:
            module, parse_error = _parse_module(rel, source)
            if parse_error is not None:
                findings.append(parse_error)
                continue
            assert module is not None
            raw = []
            for rule in file_rules:
                if rule.applies_to(module):
                    raw.extend(rule.check(module))
            summary = summarize_module(module) if scope == "src" else None
            if cache is not None:
                cache.store(rel, source, raw, summary)
        result.modules[rel] = module
        raw_by_path[rel] = raw
        if summary is not None and scope == "src":
            summaries.append(summary)
    if cache is not None:
        result.cache_hits = cache.hits
        result.cache_misses = cache.misses

    # ---- whole-program pass ------------------------------------------
    if project_rules and summaries:
        index = ProjectIndex(summaries)
        for project_rule in project_rules:
            for finding in project_rule.check_project(index):
                raw_by_path.setdefault(finding.path, []).append(finding)

    # ---- waivers + meta-findings -------------------------------------
    for rel in sorted(result.modules):
        module = result.modules[rel]
        waivers, waiver_problems = collect_waivers(module)
        findings.extend(waiver_problems)
        raw = raw_by_path.get(rel, [])
        kept = [f for f in raw if not waivers.suppresses(f)]
        result.waived_count += len(raw) - len(kept)
        findings.extend(kept)
        findings.extend(stale_waiver_findings(module, waivers))

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    baseline = baseline or Baseline()
    result.new, result.baselined = baseline.split(findings, result.modules)
    return result


def lint_source(source: str, path: str = "src/repro/snippet.py",
                select: Optional[Sequence[str]] = None,
                project: bool = False) -> List[Finding]:
    """Lint one in-memory snippet (the unit-test entry point).

    *path* controls rule scoping ("src" vs "tests") and exemptions.
    With ``project=True`` the whole-program rules also run, over an
    index containing just this one module.
    """
    module, parse_error = _parse_module(path, source)
    if parse_error is not None:
        return [parse_error]
    assert module is not None
    rules = all_rules()
    if select:
        wanted = set(select)
        rules = [r for r in rules if r.id in wanted]
    file_rules, project_rules = _split_rules(rules)

    waivers, waiver_problems = collect_waivers(module)
    findings: List[Finding] = list(waiver_problems)
    raw: List[Finding] = []
    for rule in file_rules:
        if rule.applies_to(module):
            raw.extend(rule.check(module))
    if project and project_rules and module.scope == "src":
        assert module.tree is not None
        index = ProjectIndex([summarize_module(module)])
        for project_rule in project_rules:
            raw.extend(project_rule.check_project(index))
    findings.extend(f for f in raw if not waivers.suppresses(f))
    findings.extend(stale_waiver_findings(module, waivers))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def _print_catalogue() -> None:
    for rule in all_rules():
        scopes = ",".join(rule.scopes)
        kind = "project" if isinstance(rule, ProjectRule) else "file"
        print(f"{rule.id}  [{rule.severity.value:8s}] ({scopes}; {kind}) "
              f"{rule.title}")
        print(f"        {rule.rationale}")


def _render(args: "argparse.Namespace", result: LintResult,
            rules: List[Rule]) -> str:
    """The full report in the requested format."""
    if args.format == "sarif":
        return json.dumps(to_sarif(result.new, rules), indent=2,
                          sort_keys=True) + "\n"
    lines: List[str] = []
    if args.format == "github":
        lines.extend(to_github(result.new))
    else:
        lines.extend(f.render() for f in result.new)
        lines.extend(f"{f.render()}  [baselined]" for f in result.baselined)
    errors = sum(1 for f in result.new if f.severity is Severity.ERROR)
    warnings = sum(1 for f in result.new if f.severity is Severity.WARNING)
    advisories = sum(1 for f in result.new
                     if f.severity is Severity.ADVISORY)
    cache_note = ""
    if result.cache_hits or result.cache_misses:
        cache_note = (f", cache {result.cache_hits}/"
                      f"{result.cache_hits + result.cache_misses} hits")
    lines.append(f"{len(result.modules)} files: {errors} errors, "
                 f"{warnings} warnings, {advisories} advisories "
                 f"({len(result.baselined)} baselined, "
                 f"{result.waived_count} waived{cache_note})")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point for ``python -m repro lint``; returns exit code."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST + whole-program determinism & protocol analyzer "
                    "(same seed => same trace, enforced statically).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: {DEFAULT_BASELINE} "
                             "if it exists)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather all current findings and exit 0")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--strict", action="store_true",
                        help="advisories also fail the run")
    parser.add_argument("--format", choices=FORMATS, default="text",
                        help="report format (default: text)")
    parser.add_argument("--output", default=None,
                        help="write the report to this file instead of "
                             "stdout")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the incremental per-file cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                        help="cache directory (default: "
                             f"{DEFAULT_CACHE_DIR})")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_catalogue()
        return 0

    baseline_path = args.baseline or (
        DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None)
    if args.no_baseline:
        baseline_path = None
    try:
        baseline = Baseline.load_or_empty(baseline_path)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    select = [s.strip() for s in args.select.split(",")] if args.select \
        else None
    cache = None if args.no_cache else LintCache(args.cache_dir)
    paths = args.paths or ["src"]
    result = lint_paths(paths, baseline=baseline, select=select,
                        cache=cache)

    if args.write_baseline:
        out = args.baseline or DEFAULT_BASELINE
        all_findings = result.new + result.baselined
        Baseline.from_findings(all_findings, result.modules,
                               path=out).save()
        print(f"wrote {out} ({len(all_findings)} grandfathered findings)")
        return 0

    report = _render(args, result, all_rules())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report)
        if args.format != "text":
            # still give the terminal the one-line verdict
            print(report.rstrip("\n").splitlines()[-1]
                  if args.format == "github" else
                  f"wrote {args.format} report to {args.output}")
    else:
        sys.stdout.write(report)

    failures = result.failures(strict=args.strict)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
