"""``repro.lint`` — static determinism & sim-safety analysis.

Enforces the repo's trace-equality contract (*same seed =>
bit-identical event trace*) at review time instead of three PRs later:

- **DET rules** catch second seeding roots (raw ``random``, ad-hoc
  ``default_rng``), wall-clock reads, unordered-set iteration, and
  ``id()``-based ordering.
- **SIM rules** catch host-blocking calls in DES processes, stale
  write-backs across a ``yield`` (lost updates), and mutable defaults.
- **PERF advisories** flag missing ``__slots__`` on bench-hot classes
  and float ``+=`` accumulation.

Run ``python -m repro lint [paths]``; see DESIGN.md §9 for the rule
catalogue and the waiver/baseline policy.
"""

from .baseline import Baseline, BaselineError
from .core import (Finding, Module, Rule, Severity, all_rules, register,
                   rule_by_id)
from .runner import LintResult, lint_paths, lint_source, main
from .waivers import Waiver, WaiverSet, collect_waivers

__all__ = [
    "Baseline", "BaselineError", "Finding", "LintResult", "Module", "Rule",
    "Severity", "Waiver", "WaiverSet", "all_rules", "collect_waivers",
    "lint_paths", "lint_source", "main", "register", "rule_by_id",
]
