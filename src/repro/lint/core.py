"""Core types of the determinism / sim-safety analyzer.

The linter's contract mirrors the repo's: *same seed => bit-identical
event trace*. Rules are small AST visitors registered in a global
registry; the runner parses each file once into a :class:`Module` and
hands it to every applicable rule. Findings carry a per-rule severity:

``ERROR``
    A determinism or correctness hazard. Fails the run.
``WARNING``
    A strong heuristic (e.g. the yield-race detector) that may need a
    waiver when the code is actually safe. Fails the run.
``ADVISORY``
    Perf guidance (``__slots__``, ``math.fsum``). Reported, never fails
    unless ``--strict``.
"""

from __future__ import annotations

import ast
import enum
import hashlib
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple,
                    Type)

if TYPE_CHECKING:  # pragma: no cover
    from .graph import ProjectIndex

__all__ = [
    "Severity", "Finding", "Module", "Rule", "ProjectRule", "register",
    "all_rules", "rule_by_id", "line_fingerprint", "dotted_name",
]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None.

    Lives here (not in ``rules._util``) so the semantic model in
    :mod:`repro.lint.graph` can use it without importing the rules
    package, which imports the graph back.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Severity(enum.Enum):
    """Per-rule severity; see the module docstring for semantics."""

    ERROR = "error"
    WARNING = "warning"
    ADVISORY = "advisory"

    @property
    def fails(self) -> bool:
        """Whether findings of this severity make the run exit non-zero."""
        return self is not Severity.ADVISORY


def line_fingerprint(line: str) -> str:
    """Stable content hash of one source line, whitespace-insensitive.

    Baseline entries match on (rule, path, line hash) rather than line
    *numbers*, so unrelated edits above a grandfathered finding do not
    invalidate the baseline.
    """
    stripped = "".join(line.split())
    return hashlib.blake2b(stripped.encode("utf-8"),
                           digest_size=8).hexdigest()


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def fingerprint(self, source_line: str) -> Tuple[str, str, str]:
        """Baseline identity: (rule, path, hash of the offending line)."""
        return (self.rule, self.path, line_fingerprint(source_line))

    def render(self) -> str:
        """Human-readable one-line report (path:line:col: sev RULE: msg)."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.severity.value} {self.rule}: {self.message}")


@dataclass
class Module:
    """One parsed source file plus everything rules need to inspect it.

    ``tree`` is ``None`` for a file restored from the incremental cache:
    its per-file findings and semantic summary were loaded instead of
    recomputed, so no AST exists. Per-file rules never see such a
    module; baseline fingerprinting and waiver parsing only need
    ``source``/``lines``.
    """

    path: str            # path as given on the command line (for output)
    source: str
    tree: Optional[ast.Module]
    scope: str           # "src" | "tests" | "other", from the path
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_text(self, lineno: int) -> str:
        """1-based source line (empty string past EOF)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding :class:`Finding` objects. ``scopes`` restricts where a rule
    applies ("src" sim/production code vs "tests"); ``exempt_suffixes``
    skips files whose path ends with one of the given suffixes (e.g. the
    RNG registry itself is allowed to construct numpy generators).
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    title: str = ""
    rationale: str = ""
    scopes: Tuple[str, ...] = ("src",)
    exempt_suffixes: Tuple[str, ...] = ()

    def applies_to(self, module: Module) -> bool:
        """Whether this rule runs on *module* (scope + exemptions)."""
        if module.scope not in self.scopes:
            return False
        norm = module.path.replace("\\", "/")
        return not any(norm.endswith(sfx) for sfx in self.exempt_suffixes)

    def check(self, module: Module) -> Iterator[Finding]:
        """Yield every violation of this rule found in *module*."""
        raise NotImplementedError

    def finding(self, module: Module, node: ast.AST,
                message: str) -> Finding:
        """A finding of this rule anchored at *node*."""
        return Finding(rule=self.id, severity=self.severity,
                       path=module.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message)


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Project rules run once per lint invocation over the
    :class:`~repro.lint.graph.ProjectIndex` (symbol table + call graph
    assembled from every src-scope file) instead of once per file.
    Findings are anchored in individual files as usual, so waivers and
    the baseline apply unchanged. ``check`` is never called.
    """

    #: project rules only ever analyse production code; test files do
    #: not participate in the protocol/reachability model at all.
    scopes: Tuple[str, ...] = ("src",)

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: "ProjectIndex") -> Iterator[Finding]:
        """Yield every violation found in the whole-program *index*."""
        raise NotImplementedError

    def at(self, path: str, line: int, col: int, message: str) -> Finding:
        """A finding of this rule at an explicit location."""
        return Finding(rule=self.id, severity=self.severity, path=path,
                       line=line, col=col, message=message)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    from . import rules  # noqa: F401  (import populates the registry)
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_by_id(rule_id: str) -> Optional[Type[Rule]]:
    """The registered rule class for *rule_id*, or None."""
    from . import rules  # noqa: F401
    return _REGISTRY.get(rule_id)
