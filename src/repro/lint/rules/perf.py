"""PERF-class advisory rules: hot-path hygiene.

Advisories never fail a run (unless ``--strict``); they exist so a
reviewer sees the perf debt in the diff that introduces it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..core import Finding, Module, Rule, Severity, register
from ._util import dotted_name, iter_functions, statements_in_order

__all__ = ["MissingSlotsRule", "FloatAccumulationRule"]

#: Modules whose classes are instantiated inside bench kernels; the
#: event/request/extent churn there makes per-instance ``__dict__``
#: allocation measurable (see DESIGN.md §5).
HOT_MODULE_SUFFIXES = (
    "repro/sim/engine.py", "repro/sim/process.py", "repro/sim/resources.py",
    "repro/core/tokens.py", "repro/core/queues.py",
    "repro/core/scheduler.py", "repro/fs/striping.py",
    "repro/fs/storage.py", "repro/fs/locking.py", "repro/net/message.py",
    "repro/bb/request.py",
)


@register
class MissingSlotsRule(Rule):
    """PERF101: hot-path class without ``__slots__``.

    Only fires in the modules bench kernels allocate from. Decorated
    classes (dataclasses etc.) and exception types are skipped — their
    layout is the decorator's business.
    """

    id = "PERF101"
    severity = Severity.ADVISORY
    title = "missing __slots__ on hot-path class"
    rationale = ("instances allocated on bench hot paths pay for a "
                 "__dict__ each; __slots__ removes it")
    scopes = ("src",)

    def _sets_self_attrs(self, cls: ast.ClassDef) -> bool:
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                for node in ast.walk(item):
                    if isinstance(node, ast.Attribute) and \
                            isinstance(node.ctx, ast.Store) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id == "self":
                        return True
        return False

    def _has_slots(self, cls: ast.ClassDef) -> bool:
        for item in cls.body:
            targets: List[ast.expr] = []
            if isinstance(item, ast.Assign):
                targets = list(item.targets)
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    return True
        return False

    def _exceptionish(self, cls: ast.ClassDef) -> bool:
        if cls.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in cls.bases:
            name = dotted_name(base)
            if name and name.split(".")[-1].endswith(
                    ("Error", "Exception", "Warning")):
                return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        if not any(norm.endswith(sfx) for sfx in HOT_MODULE_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.decorator_list or self._exceptionish(node):
                continue
            if self._sets_self_attrs(node) and not self._has_slots(node):
                yield self.finding(
                    module, node,
                    f"class '{node.name}' is allocated on a bench hot "
                    "path but has no __slots__")


@register
class FloatAccumulationRule(Rule):
    """PERF102: repeated ``+=`` float accumulation in a loop.

    A ``total = 0.0`` accumulator grown with ``+=`` in a loop loses
    precision order-dependently; where the codebase needs exact sums it
    uses ``math.fsum`` (and the order-dependence is exactly what DET004
    polices for sets). Advisory: plain running totals are often fine.
    """

    id = "PERF102"
    severity = Severity.ADVISORY
    title = "float += accumulation in loop"
    rationale = "math.fsum is exact and order-independent for float sums"
    scopes = ("src",)

    def check(self, module: Module) -> Iterator[Finding]:
        for func in iter_functions(module.tree):
            float_accs: Set[str] = set()
            for stmt in statements_in_order(func):
                if isinstance(stmt, ast.Assign) and \
                        len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name) and \
                        isinstance(stmt.value, ast.Constant) and \
                        isinstance(stmt.value.value, float) and \
                        stmt.value.value == 0.0:
                    float_accs.add(stmt.targets[0].id)
            if not float_accs:
                continue
            reported: Set[int] = set()  # id() of AST node, not of a value
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if isinstance(node, ast.AugAssign) and \
                            isinstance(node.op, ast.Add) and \
                            isinstance(node.target, ast.Name) and \
                            node.target.id in float_accs and \
                            id(node) not in reported:
                        reported.add(id(node))
                        yield self.finding(
                            module, node,
                            f"float accumulator '{node.target.id}' grown "
                            "with += in a loop; consider math.fsum over "
                            "the collected terms")
