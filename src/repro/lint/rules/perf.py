"""PERF-class advisory rules: hot-path hygiene.

Advisories never fail a run (unless ``--strict``); they exist so a
reviewer sees the perf debt in the diff that introduces it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from ..core import Finding, Module, Rule, Severity, register
from ._util import dotted_name, iter_functions, statements_in_order

__all__ = ["MissingSlotsRule", "FloatAccumulationRule", "ListHeadShiftRule",
           "TimerChurnRule"]

#: Modules whose classes are instantiated inside bench kernels; the
#: event/request/extent churn there makes per-instance ``__dict__``
#: allocation measurable (see DESIGN.md §5).
HOT_MODULE_SUFFIXES = (
    "repro/sim/engine.py", "repro/sim/process.py", "repro/sim/resources.py",
    "repro/core/tokens.py", "repro/core/queues.py",
    "repro/core/scheduler.py", "repro/core/sampled.py",
    "repro/fs/striping.py",
    "repro/fs/storage.py", "repro/fs/locking.py", "repro/net/message.py",
    "repro/bb/request.py",
)


@register
class MissingSlotsRule(Rule):
    """PERF101: hot-path class without ``__slots__``.

    Only fires in the modules bench kernels allocate from. Decorated
    classes (dataclasses etc.) and exception types are skipped — their
    layout is the decorator's business.
    """

    id = "PERF101"
    severity = Severity.ADVISORY
    title = "missing __slots__ on hot-path class"
    rationale = ("instances allocated on bench hot paths pay for a "
                 "__dict__ each; __slots__ removes it")
    scopes = ("src",)

    def _sets_self_attrs(self, cls: ast.ClassDef) -> bool:
        for item in cls.body:
            if isinstance(item, ast.FunctionDef) and item.name == "__init__":
                for node in ast.walk(item):
                    if isinstance(node, ast.Attribute) and \
                            isinstance(node.ctx, ast.Store) and \
                            isinstance(node.value, ast.Name) and \
                            node.value.id == "self":
                        return True
        return False

    def _has_slots(self, cls: ast.ClassDef) -> bool:
        for item in cls.body:
            targets: List[ast.expr] = []
            if isinstance(item, ast.Assign):
                targets = list(item.targets)
            elif isinstance(item, ast.AnnAssign):
                targets = [item.target]
            for target in targets:
                if isinstance(target, ast.Name) and \
                        target.id == "__slots__":
                    return True
        return False

    def _exceptionish(self, cls: ast.ClassDef) -> bool:
        if cls.name.endswith(("Error", "Exception", "Warning")):
            return True
        for base in cls.bases:
            name = dotted_name(base)
            if name and name.split(".")[-1].endswith(
                    ("Error", "Exception", "Warning")):
                return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        if not any(norm.endswith(sfx) for sfx in HOT_MODULE_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if node.decorator_list or self._exceptionish(node):
                continue
            if self._sets_self_attrs(node) and not self._has_slots(node):
                yield self.finding(
                    module, node,
                    f"class '{node.name}' is allocated on a bench hot "
                    "path but has no __slots__")


@register
class FloatAccumulationRule(Rule):
    """PERF102: repeated ``+=`` float accumulation in a loop.

    A ``total = 0.0`` accumulator grown with ``+=`` in a loop loses
    precision order-dependently; where the codebase needs exact sums it
    uses ``math.fsum`` (and the order-dependence is exactly what DET004
    polices for sets). Advisory: plain running totals are often fine.
    """

    id = "PERF102"
    severity = Severity.ADVISORY
    title = "float += accumulation in loop"
    rationale = "math.fsum is exact and order-independent for float sums"
    scopes = ("src",)

    def check(self, module: Module) -> Iterator[Finding]:
        for func in iter_functions(module.tree):
            float_accs: Set[str] = set()
            for stmt in statements_in_order(func):
                if isinstance(stmt, ast.Assign) and \
                        len(stmt.targets) == 1 and \
                        isinstance(stmt.targets[0], ast.Name) and \
                        isinstance(stmt.value, ast.Constant) and \
                        isinstance(stmt.value.value, float) and \
                        stmt.value.value == 0.0:
                    float_accs.add(stmt.targets[0].id)
            if not float_accs:
                continue
            reported: Set[int] = set()  # id() of AST node, not of a value
            for loop in ast.walk(func):
                if not isinstance(loop, (ast.For, ast.While)):
                    continue
                for node in ast.walk(loop):
                    if isinstance(node, ast.AugAssign) and \
                            isinstance(node.op, ast.Add) and \
                            isinstance(node.target, ast.Name) and \
                            node.target.id in float_accs and \
                            id(node) not in reported:
                        reported.add(id(node))
                        yield self.finding(
                            module, node,
                            f"float accumulator '{node.target.id}' grown "
                            "with += in a loop; consider math.fsum over "
                            "the collected terms")


@register
class ListHeadShiftRule(Rule):
    """PERF103: ``list.pop(0)`` / ``list.insert(0, …)`` on a hot path.

    Removing or inserting at a list's head shifts every remaining
    element — O(n) per call, O(n²) when it hides inside a drain loop.
    The scale-regime kernels (DESIGN.md §10) exist precisely because
    such costs are invisible at 16 jobs and dominate at 4096; prefer
    ``collections.deque`` (``popleft``/``appendleft``), an index cursor
    into the list, or the repo's ``QueueSet``/heap structures. Only
    fires in the bench-kernel hot modules: a head-pop on a three-element
    config list elsewhere is fine. Advisory — receiver types are not
    inferred, so waive true non-lists inline with a reason.
    """

    id = "PERF103"
    severity = Severity.ADVISORY
    title = "O(n) list head pop/insert on hot path"
    rationale = ("pop(0)/insert(0, ...) shift the whole list; deque or "
                 "an index cursor is O(1)")
    scopes = ("src",)

    @staticmethod
    def _is_zero(node: ast.expr) -> bool:
        return (isinstance(node, ast.Constant)
                and node.value == 0 and not isinstance(node.value, bool))

    def check(self, module: Module) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        if not any(norm.endswith(sfx) for sfx in HOT_MODULE_SUFFIXES):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute) or \
                    node.keywords:
                continue
            attr = node.func.attr
            # dict.pop(0, default) takes two args; one exact-zero arg is
            # the list head-pop shape.
            if attr == "pop" and len(node.args) == 1 and \
                    self._is_zero(node.args[0]):
                what = "pop(0)"
            elif attr == "insert" and len(node.args) == 2 and \
                    self._is_zero(node.args[0]):
                what = "insert(0, ...)"
            else:
                continue
            yield self.finding(
                module, node,
                f"{what} shifts every element on a bench hot path; "
                "use collections.deque or an index cursor")


@register
class TimerChurnRule(Rule):
    """PERF104: callback-list scans and never-cancelled timer races.

    Two shapes of event-queue garbage (DESIGN.md §15):

    - ``X.callbacks.remove(cb)`` outside ``sim/`` — a linear scan of a
      possibly thousands-long callback list; the kernel's O(1)
      ``Event.attach``/``detach`` slot handles exist for exactly this.
    - A local ``t = <engine>.timeout(...)`` that gets a callback
      attached (``t.callbacks.append``/``t.attach``) but is neither
      yielded, cancelled, nor stored anywhere — the expiry-race shape:
      when the raced operation wins, the timer stays in the event queue
      as a corpse until it fires. Keep a handle and ``cancel()`` it.

    Conservative-for-silence: a timer that escapes the function (stored
    into an attribute/container, passed to a call, returned or yielded)
    is assumed to be cancelled by whoever holds it. Timers that always
    fire by design (pure delays) take no callback and are never flagged;
    waive the rare always-fires callback timer inline with a reason.
    """

    id = "PERF104"
    severity = Severity.ADVISORY
    title = "timer-churn hazard (callback scan / uncancelled race timer)"
    rationale = ("dead timers and linear callback scans make the event "
                 "queue linear in garbage; cancel raced timers and use "
                 "attach/detach slots")
    scopes = ("src",)

    @staticmethod
    def _local_name(node: ast.expr) -> str:
        return node.id if isinstance(node, ast.Name) else ""

    def _scan_remove(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "remove" and \
                    isinstance(node.func.value, ast.Attribute) and \
                    node.func.value.attr == "callbacks":
                yield self.finding(
                    module, node,
                    "callbacks.remove() scans the whole callback list; "
                    "use the O(1) Event.attach/detach slot handles")

    def _scan_races(self, module: Module,
                    func: ast.AST) -> Iterator[Finding]:
        timers: dict = {}    # name -> Assign node of the timeout
        attached: set = set()
        escaped: set = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                value = node.value
                if isinstance(target, ast.Name) and \
                        isinstance(value, ast.Call) and \
                        isinstance(value.func, ast.Attribute) and \
                        value.func.attr == "timeout":
                    timers[target.id] = node
                    continue
                # Re-assignment into an attribute/subscript: the timer
                # escapes to state someone else can cancel.
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    escaped.add(self._local_name(node.value))
            elif isinstance(node, ast.Call):
                fn = node.func
                if isinstance(fn, ast.Attribute):
                    owner = fn.value
                    if fn.attr == "append" and \
                            isinstance(owner, ast.Attribute) and \
                            owner.attr == "callbacks":
                        attached.add(self._local_name(owner.value))
                        continue
                    if fn.attr == "attach":
                        attached.add(self._local_name(owner))
                        continue
                    if fn.attr == "cancel":
                        escaped.add(self._local_name(owner))
                        continue
                # Passed as a call argument (all_of, helper, ...): the
                # callee may keep a cancellable handle.
                for arg in list(node.args) + [kw.value
                                              for kw in node.keywords]:
                    escaped.add(self._local_name(arg))
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = getattr(node, "value", None)
                if value is not None:
                    escaped.add(self._local_name(value))
            elif isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                for elt in node.elts:
                    escaped.add(self._local_name(elt))
            elif isinstance(node, ast.Dict):
                for elt in node.values:
                    escaped.add(self._local_name(elt))
        for name, assign in timers.items():
            if name in attached and name not in escaped:
                yield self.finding(
                    module, assign,
                    f"timer '{name}' gets a callback but is never "
                    "cancelled, yielded, or stored; if it races another "
                    "completion it stays in the event queue as a corpse "
                    "- keep a handle and cancel() the loser")

    def check(self, module: Module) -> Iterator[Finding]:
        norm = module.path.replace("\\", "/")
        in_sim = "/sim/" in norm or norm.startswith("sim/")
        if not in_sim:
            yield from self._scan_remove(module)
        seen: set = set()  # nested defs are walked twice; dedupe by site
        for func in iter_functions(module.tree):
            for f in self._scan_races(module, func):
                key = (f.line, f.col)
                if key not in seen:
                    seen.add(key)
                    yield f
