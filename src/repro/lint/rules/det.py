"""DET-class rules: violations of the same-seed => same-trace contract.

DET001-005 are per-file pattern rules; DET006/DET007 are whole-program
rules over the :class:`~repro.lint.graph.ProjectIndex` that catch the
same hazards when they hide behind helper indirection.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Set

from ..core import Finding, Module, ProjectRule, Rule, Severity, register
from ._util import SetExprTracker, dotted_name, statements_in_order

if TYPE_CHECKING:  # pragma: no cover
    from ..graph import ProjectIndex

__all__ = ["RawRandomRule", "AdHocNumpyRngRule", "WallClockRule",
           "UnorderedIterationRule", "IdOrderingRule",
           "LaunderedRngRule", "UnorderedEscapeRule"]

#: module allowed to construct numpy generators (the registry itself).
_RNG_EXEMPT_SUFFIX = "repro/sim/rng.py"


@register
class RawRandomRule(Rule):
    """DET001: the stdlib ``random`` module in simulation code.

    ``random`` draws from interpreter-global state that any import can
    perturb; every stochastic component must pull from a named
    ``RngRegistry`` stream instead.
    """

    id = "DET001"
    severity = Severity.ERROR
    title = "stdlib random module in sim code"
    rationale = ("global random state breaks per-stream reproducibility; "
                 "use sim.rng.RngRegistry streams")
    scopes = ("src",)

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or \
                            alias.name.startswith("random."):
                        yield self.finding(
                            module, node,
                            "import of stdlib 'random'; draw from a named "
                            "RngRegistry stream instead")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module, node,
                        "import from stdlib 'random'; draw from a named "
                        "RngRegistry stream instead")


@register
class AdHocNumpyRngRule(Rule):
    """DET002: numpy generators constructed outside the RngRegistry.

    An ad-hoc ``default_rng(0)`` is a second seeding root: its draws
    are not derived from the experiment seed, and adding one perturbs
    nothing *visibly* until a trace diff three PRs later.
    """

    id = "DET002"
    severity = Severity.ERROR
    title = "ad-hoc numpy RNG construction"
    rationale = ("all generators must be spawned from RngRegistry so one "
                 "experiment seed derives every stream")
    scopes = ("src",)
    exempt_suffixes = ("repro/sim/rng.py",)

    _BANNED_SUFFIXES = (
        "random.default_rng", "random.seed", "random.RandomState",
        "random.Generator", "random.PCG64", "random.SeedSequence",
    )
    _BANNED_BARE = {"default_rng", "RandomState", "SeedSequence"}

    def _bare_imports(self, module: Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and \
                    node.module.startswith("numpy"):
                for alias in node.names:
                    if alias.name in self._BANNED_BARE:
                        names.add(alias.asname or alias.name)
        return names

    def check(self, module: Module) -> Iterator[Finding]:
        bare = self._bare_imports(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if any(name == sfx or name.endswith("." + sfx)
                   for sfx in self._BANNED_SUFFIXES) or name in bare:
                yield self.finding(
                    module, node,
                    f"ad-hoc numpy RNG '{name}'; route through a named "
                    "RngRegistry stream")


@register
class WallClockRule(Rule):
    """DET003: wall-clock reads in simulation code.

    Simulated time is ``engine.now``; host time leaking into sim state
    makes traces unrepeatable. ``time.perf_counter`` stays legal: it is
    the sanctioned way to *measure* host wall time in benchmarks and
    never feeds simulation state.
    """

    id = "DET003"
    severity = Severity.ERROR
    title = "wall-clock read in sim code"
    rationale = "sim state must depend on engine.now, never host time"
    scopes = ("src",)

    _BANNED = (
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.localtime", "time.gmtime", "datetime.now", "datetime.utcnow",
        "datetime.today", "date.today",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if any(name == b or name.endswith("." + b) for b in self._BANNED):
                yield self.finding(
                    module, node,
                    f"wall-clock call '{name}' in sim code; use engine.now "
                    "(waive only for host-side metadata)")


@register
class UnorderedIterationRule(Rule):
    """DET004: iterating a set where order can reach scheduling or output.

    Set iteration order depends on hash seeding and insertion history;
    float summation over it is order-dependent even when the *elements*
    are identical. (Plain dict iteration is insertion-ordered and
    therefore deterministic — only set-valued expressions are flagged.)
    The fix is ``sorted(...)`` at the iteration site.
    """

    id = "DET004"
    severity = Severity.ERROR
    title = "iteration over unordered set"
    rationale = ("set order is not part of the trace contract; sort before "
                 "iterating when order can matter")
    scopes = ("src", "tests")

    _ORDERED_SINKS = {"list", "tuple", "sum", "enumerate"}

    def check(self, module: Module) -> Iterator[Finding]:
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(n for n in ast.walk(module.tree)
                      if isinstance(n, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)))
        for scope in scopes:
            tracker = SetExprTracker()
            for stmt in statements_in_order(scope):
                yield from self._scan_statement(module, stmt, tracker)
                tracker.observe(stmt)

    def _header_exprs(self, stmt: ast.stmt) -> List[ast.AST]:
        """Expressions owned by *stmt* itself (not its nested bodies)."""
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.While, ast.If)):
            return [stmt.test]
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.Return,
                             ast.Expr)):
            return [stmt.value] if stmt.value is not None else []
        if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            return [stmt.value]
        if isinstance(stmt, ast.Assert):
            return [stmt.test]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, ast.Raise) and stmt.exc is not None:
            return [stmt.exc]
        return []

    def _scan_statement(self, module: Module, stmt: ast.stmt,
                        tracker: SetExprTracker) -> Iterator[Finding]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)) and \
                tracker.is_set_expr(stmt.iter):
            yield self.finding(
                module, stmt.iter,
                "for-loop over a set expression; iterate "
                "sorted(...) instead")
        for expr in self._header_exprs(stmt):
            for node in ast.walk(expr):
                if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                     ast.GeneratorExp)):
                    for gen in node.generators:
                        if tracker.is_set_expr(gen.iter):
                            yield self.finding(
                                module, gen.iter,
                                "comprehension over a set expression; "
                                "iterate sorted(...) instead")
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name in self._ORDERED_SINKS and node.args and \
                            tracker.is_set_expr(node.args[0]):
                        yield self.finding(
                            module, node.args[0],
                            f"'{name}(...)' consumes a set expression in "
                            "arbitrary order; wrap it in sorted(...)")


@register
class IdOrderingRule(Rule):
    """DET005: ordering or hashing by object identity.

    ``id()`` values vary across runs with allocator state; any ordering
    or hash derived from them is non-reproducible by construction.
    """

    id = "DET005"
    severity = Severity.ERROR
    title = "id()-based ordering or hashing"
    rationale = "object addresses differ across runs; sort by stable keys"
    scopes = ("src", "tests")

    def _lambda_calls_id(self, node: ast.AST) -> bool:
        if not isinstance(node, ast.Lambda):
            return False
        for sub in ast.walk(node.body):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Name) and sub.func.id == "id":
                return True
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg != "key":
                    continue
                if isinstance(kw.value, ast.Name) and kw.value.id == "id":
                    yield self.finding(
                        module, kw.value,
                        "key=id orders by object address; use a stable key")
                elif self._lambda_calls_id(kw.value):
                    yield self.finding(
                        module, kw.value,
                        "sort key calls id(); object addresses are not "
                        "stable across runs")
            name = dotted_name(node.func)
            if name == "hash" and node.args and \
                    isinstance(node.args[0], ast.Call):
                inner = dotted_name(node.args[0].func)
                if inner == "id":
                    yield self.finding(
                        module, node,
                        "hash(id(...)) is run-dependent; hash a stable key")


@register
class LaunderedRngRule(ProjectRule):
    """DET006: an ad-hoc RNG laundered through helper indirection.

    DET002 catches ``np.random.default_rng(...)`` spelled at the call
    site; this rule catches the two ways the same second seeding root
    hides from it: a module-level *alias* of a banned constructor
    (``_mk = np.random.default_rng``; calling ``_mk`` looks innocent
    per-file), and a helper that *returns* an ad-hoc generator so its
    callers receive unregistered randomness N hops away. The
    ``RngRegistry`` module itself stays exempt — wrappers that bottom
    out in a named registry stream are the sanctioned pattern and are
    not flagged.
    """

    id = "DET006"
    severity = Severity.ERROR
    title = "RNG construction laundered through helpers"
    rationale = ("every generator must trace back to a named RngRegistry "
                 "stream, even through aliases and wrapper functions")

    def _exempt(self, index: "ProjectIndex", module: str) -> bool:
        summary = index.files.get(module)
        if summary is None:
            return True
        return summary.path.replace("\\", "/").endswith(_RNG_EXEMPT_SUFFIX)

    def check_project(self,
                      index: "ProjectIndex") -> Iterator[Finding]:
        # Seed set: functions in non-exempt modules that return an
        # ad-hoc generator directly (or via a module-level alias).
        sources: Set[str] = set()
        for qual in sorted(index.functions):
            fn = index.functions[qual]
            if fn.returns_rng and not self._exempt(
                    index, qual.split(":", 1)[0]):
                sources.add(qual)
        # Propagate through return-value indirection to a fixpoint.
        changed = True
        while changed:
            changed = False
            for qual in sorted(index.functions):
                if qual in sources:
                    continue
                fn = index.functions[qual]
                for expr in fn.return_calls:
                    target = index.resolve_call(fn, expr)
                    if target in sources:
                        sources.add(qual)
                        changed = True
                        break
        for qual in sorted(index.functions):
            fn = index.functions[qual]
            module = qual.split(":", 1)[0]
            if self._exempt(index, module):
                continue
            path = index.files[module].path
            for line, col, alias in fn.rng_alias_calls:
                yield self.at(
                    path, line, col,
                    f"call through '{alias}', a module-level alias of a "
                    "banned numpy RNG constructor; draw from a named "
                    "RngRegistry stream instead")
            for expr in fn.return_calls:
                target = index.resolve_call(fn, expr)
                if target in sources:
                    yield self.at(
                        path, fn.line, fn.col,
                        f"'{fn.name}' returns the ad-hoc RNG constructed "
                        f"in '{target}'; thread a named RngRegistry "
                        "stream through instead")
                    break


@register
class UnorderedEscapeRule(ProjectRule):
    """DET007: iterating a set returned across a function boundary.

    DET004 sees ``for x in some_set`` inside one file; it cannot know
    that ``monitor.active_local_jobs()`` three modules away returns a
    set. This rule marks every function whose returns are set-valued
    (literals, comprehensions, ``set()`` calls, or a ``-> set``
    annotation) and flags call sites that iterate the result directly
    in a for-loop or comprehension — the order then leaks into whatever
    the loop schedules. ``sorted(...)`` at the call site silences it.
    """

    id = "DET007"
    severity = Severity.ERROR
    title = "unordered set escapes across function boundary"
    rationale = ("a set-returning helper plus a bare for-loop at the "
                 "caller reorders events across runs; sort at the "
                 "iteration site")

    def check_project(self,
                      index: "ProjectIndex") -> Iterator[Finding]:
        for qual in sorted(index.functions):
            fn = index.functions[qual]
            module = qual.split(":", 1)[0]
            for call in fn.calls:
                if not call.in_iter:
                    continue
                target = index.resolve_call(fn, call.expr)
                if target is None:
                    continue
                callee = index.functions.get(target)
                if callee is None or not callee.returns_set:
                    continue
                yield self.at(
                    index.files[module].path, call.line, call.col,
                    f"iterating the set returned by '{target}' in "
                    "arbitrary order; wrap the call in sorted(...)")
