"""Rule plugins. Importing this package registers every rule.

Third-party/experiment rules can self-register by importing
:func:`repro.lint.core.register` and decorating a :class:`Rule`
subclass before the runner calls :func:`repro.lint.core.all_rules`.
"""

from . import det, perf, proto, sim, trace  # noqa: F401  (registers rules)

__all__ = ["det", "perf", "proto", "sim", "trace"]
