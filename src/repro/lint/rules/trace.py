"""TRACE-class rules: statically checked trace-neutrality of toggles.

The repo's perf toggles (``set_sync_delta_enabled`` and friends) all
promise the same contract: flipping the toggle changes wire accounting
or CPU cost, never the simulated event trace. Until now that promise
was only a test-suite property (seed-equivalence tests per toggle);
these rules make the *reachability* half of it static. A declared
registry of trace-bearing state (scheduler queues, the DES heap, job
tables, FS metadata) is checked against every toggle guard: the
enabled-only branch must not reach — directly or through the call
graph — a mutation of registered state that the disabled branch cannot
also reach. The skip direction (enabled path provably does *less*, like
the hash-skip short-circuit) is intentionally allowed: doing strictly
fewer redundant writes is how these toggles earn their keep.

TRACE102 guards the toggle mechanism itself: the module-global flags
are only trustworthy while their one blessed ``set_*`` setter is the
only writer.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set

from ..core import Finding, ProjectRule, Severity, register
from ..graph import FunctionSummary, ProjectIndex, ToggleGuard

__all__ = ["TRACE_STATE", "ToggleReachesTraceStateRule",
           "ToggleWrittenOutsideSetterRule"]

#: The declared registry of trace-bearing attributes: state whose
#: content or mutation order is (or feeds) the event trace. Matching is
#: by attribute name, project-wide — names here must stay specific
#: enough not to collide with scratch state (see DESIGN.md §14).
TRACE_STATE: Dict[str, str] = {
    # DES substrate (sim/engine.py): the event heap IS the trace.
    "_heap": "DES event heap",
    "_now": "simulated clock",
    "_seq": "event sequence counter",
    # Scheduler queueing state (core/scheduler.py QueueSet).
    "_queues": "per-job request queues",
    "_sorted_jobs": "scheduler job ordering",
    "_total_cost": "queued-cost aggregate",
    "_job_cost": "per-job queued cost",
    "membership_version": "queue-membership version counter",
    # Job/status tables (bb/monitor.py, core/jobinfo.py).
    "_entries": "job status table entries",
    "local_jobs": "job monitor local-job set",
    "_client_job": "client-to-job mapping",
    # FS metadata (fs/filesystem.py StorageNode).
    "inodes": "storage-node inode table",
    "paths": "storage-node path namespace",
    # Controller sync state that feeds token allocation.
    "presence": "cluster presence map",
}


def _module_of(fn: FunctionSummary) -> str:
    return fn.qualname.split(":", 1)[0]


@register
class ToggleReachesTraceStateRule(ProjectRule):
    """TRACE101: a toggle-guarded branch mutates trace-bearing state
    the off-path cannot reach.

    Each guard's enabled-only suite is closed over the call graph; any
    mutation of a :data:`TRACE_STATE` attribute in that closure must
    also appear in the disabled path's closure, otherwise flipping the
    toggle changes simulation state — the definition of a
    trace-neutrality bug. Unresolvable calls contribute nothing, so
    dynamic dispatch degrades to silence, not noise.
    """

    id = "TRACE101"
    severity = Severity.ERROR
    title = "toggle-guarded branch mutates trace-bearing state"
    rationale = ("perf toggles must be trace-neutral: the enabled path "
                 "may skip work, never do state-changing work the "
                 "disabled path doesn't")

    def _closure_mutations(self, index: ProjectIndex,
                           fn: FunctionSummary, calls: List[str],
                           direct: List[str]) -> Set[str]:
        """Registered attrs mutated by *direct* writes or any function
        reachable from *calls*."""
        mutated = {attr for attr in direct if attr in TRACE_STATE}
        roots = index.resolve_exprs(fn, calls)
        for qual in sorted(index.reachable(roots)):
            for attr in index.functions[qual].mutations:
                if attr in TRACE_STATE:
                    mutated.add(attr)
        return mutated

    def _check_guard(self, index: ProjectIndex, fn: FunctionSummary,
                     guard: ToggleGuard) -> Iterator[Finding]:
        on = self._closure_mutations(index, fn, guard.on_calls,
                                     guard.on_mutations)
        if not on:
            return
        off = self._closure_mutations(index, fn, guard.off_calls,
                                      guard.off_mutations)
        escaped = sorted(on - off)
        if not escaped:
            return
        toggle = index.resolve_toggle(fn, guard.toggle)
        label = toggle.name if toggle is not None else guard.toggle
        detail = ", ".join(
            f"'{attr}' ({TRACE_STATE[attr]})" for attr in escaped)
        yield self.at(
            index.files[_module_of(fn)].path, guard.line, guard.col,
            f"branch guarded by toggle '{label}' reaches a mutation of "
            f"trace-bearing state {detail} that the disabled path "
            "cannot; this breaks the same-seed => same-trace contract")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for qual in sorted(index.functions):
            fn = index.functions[qual]
            for guard in fn.guards:
                yield from self._check_guard(index, fn, guard)


@register
class ToggleWrittenOutsideSetterRule(ProjectRule):
    """TRACE102: a toggle flag is rebound outside its ``set_*`` setter.

    The trace-neutrality argument for each toggle assumes one audited
    write path. A second ``global _X_ENABLED`` writer (a test helper
    that leaked into src, a module that flips a peer's toggle) silently
    widens the surface TRACE101 reasons about.
    """

    id = "TRACE102"
    severity = Severity.WARNING
    title = "toggle flag written outside its setter"
    rationale = ("each _X_ENABLED flag must have exactly one blessed "
                 "set_* writer for the neutrality audit to hold")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        for key in sorted(index.toggles):
            flag = index.toggles[key]
            summary = index.files.get(flag.module)
            if summary is None:
                continue
            for qual in sorted(summary.functions):
                fn = summary.functions[qual]
                if flag.name not in fn.global_writes:
                    continue
                if fn.name.startswith("set_") and fn.cls is None:
                    continue
                yield self.at(
                    summary.path, fn.line, fn.col,
                    f"function '{fn.name}' rebinds toggle flag "
                    f"'{flag.name}' but is not its set_* setter; route "
                    "all writes through the blessed setter")
