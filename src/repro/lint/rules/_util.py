"""Shared AST helpers for lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Union

from ..core import dotted_name

__all__ = [
    "FuncDef", "dotted_name", "import_aliases", "iter_functions",
    "is_generator", "SetExprTracker",
]

FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def import_aliases(tree: ast.Module, module: str) -> Set[str]:
    """Local names bound to *module* (``import numpy as np`` -> {"np"})."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    names.add(alias.asname or alias.name.split(".")[0])
    return names


def iter_functions(tree: ast.Module) -> Iterator[FuncDef]:
    """Every function/async-function definition, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_generator(func: ast.AST) -> bool:
    """True if *func* contains a yield that belongs to it (not nested)."""
    for node in _walk_own(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def _walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk *func*'s body without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class SetExprTracker:
    """Per-function tracking of names bound to set-valued expressions.

    Resolves the two-step hazard ``keys = set(a) | set(b); for k in
    keys`` without full dataflow: a simple assignment of a set-producing
    expression taints the target name; any other assignment clears it.
    """

    _SET_CALLS = {"set", "frozenset"}

    def __init__(self) -> None:
        self._tainted: Dict[str, ast.AST] = {}

    def is_set_expr(self, node: ast.AST) -> bool:
        """Whether *node* evaluates to a set (literal, call, op, or taint)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name in self._SET_CALLS
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return node.id in self._tainted
        return False

    def observe(self, stmt: ast.stmt) -> None:
        """Update taint from one assignment statement."""
        if isinstance(stmt, ast.Assign):
            tainted = self.is_set_expr(stmt.value)
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    if tainted:
                        self._tainted[target.id] = stmt.value
                    else:
                        self._tainted.pop(target.id, None)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            target = stmt.target
            if isinstance(target, ast.Name):
                value = getattr(stmt, "value", None)
                if value is not None and self.is_set_expr(value):
                    self._tainted[target.id] = value
                else:
                    self._tainted.pop(target.id, None)


def statements_in_order(func: ast.AST) -> List[ast.stmt]:
    """All statements of *func* (excluding nested functions), source order."""
    out: List[ast.stmt] = []
    for node in _walk_own(func):
        if isinstance(node, ast.stmt):
            out.append(node)
    out.sort(key=lambda s: (s.lineno, s.col_offset))
    return out
