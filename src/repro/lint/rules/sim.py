"""SIM-class rules: DES-safety hazards in simulation processes."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import Finding, Module, Rule, Severity, register
from ._util import dotted_name, is_generator, iter_functions, \
    statements_in_order

__all__ = ["BlockingCallRule", "YieldRaceRule", "MutableDefaultRule",
           "WorkerBoundaryRule"]


@register
class BlockingCallRule(Rule):
    """SIM001: host-blocking calls inside simulation code.

    A DES process waits by yielding ``engine.timeout(...)``;
    ``time.sleep`` stalls the whole interpreter and advances *no*
    simulated time. Interactive input is equally out of place.
    """

    id = "SIM001"
    severity = Severity.ERROR
    title = "host-blocking call in sim code"
    rationale = "processes wait by yielding events, never by blocking the host"
    scopes = ("src",)

    _BANNED = ("time.sleep", "os.system")
    _BANNED_BARE = {"sleep", "input"}

    def check(self, module: Module) -> Iterator[Finding]:
        from_time = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        from_time.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            banned = any(name == b or name.endswith("." + b)
                         for b in self._BANNED)
            banned = banned or name in from_time or name == "input"
            if banned:
                yield self.finding(
                    module, node,
                    f"blocking call '{name}' stalls the host; yield "
                    "engine.timeout(delay) instead")


@register
class YieldRaceRule(Rule):
    """SIM002: lost-update writes across a simulated wait.

    Heuristic over generator (process) functions: a local captured from
    shared attribute state *before* a ``yield`` and written back to the
    same attribute *after* one is the classic DES lost update — another
    process may run during the wait and its update is overwritten. Safe
    code re-reads after resuming or holds the owning lock (waive with a
    reason naming the lock).
    """

    id = "SIM002"
    severity = Severity.WARNING
    title = "stale write-back across a yield"
    rationale = ("state read before a wait and written after it loses "
                 "concurrent updates; re-read or hold the owning lock")
    scopes = ("src",)

    def check(self, module: Module) -> Iterator[Finding]:
        for func in iter_functions(module.tree):
            if not is_generator(func):
                continue
            yield from self._check_generator(module, func)

    def _stmt_yields(self, stmt: ast.stmt) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
        return False

    def _check_generator(self, module: Module,
                         func: ast.AST) -> Iterator[Finding]:
        # local name -> (attribute path it captured, epoch of the capture)
        captured: Dict[str, Tuple[str, int]] = {}
        epoch = 0
        for stmt in statements_in_order(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                # Write-back: obj.attr = <expr using a stale local>
                if isinstance(target, ast.Attribute):
                    path = dotted_name(target)
                    if path is not None:
                        stale = self._stale_local(stmt.value, captured,
                                                  path, epoch)
                        if stale is not None:
                            yield self.finding(
                                module, stmt,
                                f"'{path}' is written from local "
                                f"'{stale}' captured before a yield; a "
                                "concurrent process may have updated it "
                                "during the wait (lost update)")
                # Capture: local = obj.attr
                elif isinstance(target, ast.Name):
                    if isinstance(stmt.value, ast.Attribute):
                        path = dotted_name(stmt.value)
                        if path is not None:
                            captured[target.id] = (path, epoch)
                        else:
                            captured.pop(target.id, None)
                    else:
                        captured.pop(target.id, None)
            if self._stmt_yields(stmt):
                epoch += 1

    def _stale_local(self, value: ast.AST,
                     captured: Dict[str, Tuple[str, int]],
                     path: str, epoch: int) -> Optional[str]:
        """Name of a local in *value* captured from *path* before a yield."""
        for node in ast.walk(value):
            if isinstance(node, ast.Name) and node.id in captured:
                src_path, src_epoch = captured[node.id]
                if src_path == path and src_epoch < epoch:
                    return node.id
        return None


@register
class MutableDefaultRule(Rule):
    """SIM003: mutable default arguments.

    A mutable default is shared by every call; in engine-registered
    classes that silently couples independent processes through one
    list or dict.
    """

    id = "SIM003"
    severity = Severity.ERROR
    title = "mutable default argument"
    rationale = "defaults are evaluated once and shared across all calls"
    scopes = ("src", "tests")

    _MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                      "deque"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            return name is not None and \
                name.split(".")[-1] in self._MUTABLE_CALLS
        return False

    def check(self, module: Module) -> Iterator[Finding]:
        for func in iter_functions(module.tree):
            defaults: List[ast.AST] = list(func.args.defaults)
            defaults.extend(d for d in func.args.kw_defaults
                            if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        module, default,
                        f"mutable default in '{func.name}()'; use None and "
                        "construct inside the body")


@register
class WorkerBoundaryRule(Rule):
    """SIM004: unsafe worker boundary for parallel fan-out.

    A forked worker duplicates live interpreter state — engine clocks,
    RNG registries, open journal handles — so a point computed in the
    child can silently diverge from the same point computed serially.
    Sim-safe fan-out (the sweep runner's contract) uses the ``spawn``
    start method so each worker re-imports the code and rebuilds its
    world from the point config alone, and passes a *top-level* worker
    function that spawn can re-import by qualified name. This rule
    flags the three ways code steps outside that contract: forking
    (``os.fork``, a non-spawn ``get_context``/``set_start_method``),
    platform-default ``multiprocessing.Pool``/``Process`` construction,
    and lambda or ``self``-bound workers handed to pool fan-out calls.
    """

    id = "SIM004"
    severity = Severity.ERROR
    title = "unsafe parallel worker boundary"
    rationale = ("fork duplicates live sim state; use spawn and top-level "
                 "worker functions so children rebuild from the config")
    scopes = ("src",)

    #: Pool fan-out methods whose worker argument must be picklable by
    #: qualified name (plain ``.map`` is omitted: too many non-pool
    #: objects expose it).
    _POOL_METHODS = {"imap", "imap_unordered", "map_async", "apply_async",
                     "starmap", "starmap_async"}
    #: Constructors that silently take the platform-default start method
    #: (fork on Linux).
    _DEFAULT_CTX = {"multiprocessing.Pool", "multiprocessing.Process",
                    "multiprocessing.pool.Pool"}

    def _mp_aliases(self, module: Module) -> Dict[str, str]:
        """Local name -> multiprocessing symbol, for from-imports."""
        aliases: Dict[str, str] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module is not None \
                    and node.module.split(".")[0] == "multiprocessing":
                for alias in node.names:
                    aliases[alias.asname or alias.name] = alias.name
        return aliases

    def _start_method_arg(self, node: ast.Call) -> Optional[str]:
        """The constant start-method argument, '' if absent, None if
        dynamic (not a string literal)."""
        args = list(node.args) + [kw.value for kw in node.keywords
                                  if kw.arg == "method"]
        if not args:
            return ""
        first = args[0]
        if isinstance(first, ast.Constant) and \
                isinstance(first.value, str):
            return first.value
        return None

    def check(self, module: Module) -> Iterator[Finding]:
        aliases = self._mp_aliases(module)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            symbol = aliases.get(name, name)
            if symbol == "os.fork":
                yield self.finding(
                    module, node,
                    "os.fork() duplicates live sim state (engine clocks, "
                    "RNG registries); use spawn-based fan-out")
            elif symbol in ("multiprocessing.get_context", "get_context",
                            "multiprocessing.set_start_method",
                            "set_start_method"):
                method = self._start_method_arg(node)
                if method != "spawn":
                    shown = "platform default" if method == "" else \
                        (method or "a dynamic value")
                    yield self.finding(
                        module, node,
                        f"start method is {shown!r}; only 'spawn' "
                        "re-imports workers instead of forking live sim "
                        "state")
            elif symbol in self._DEFAULT_CTX or \
                    (name in aliases and aliases[name] in ("Pool",
                                                           "Process")):
                yield self.finding(
                    module, node,
                    f"'{name}' uses the platform-default start method "
                    "(fork on Linux); construct it from "
                    "get_context('spawn')")
            elif name.rpartition(".")[2] in self._POOL_METHODS and \
                    node.args:
                worker = node.args[0]
                if isinstance(worker, ast.Lambda):
                    yield self.finding(
                        module, node,
                        "lambda worker cannot be re-imported by a spawned "
                        "child; use a top-level function")
                elif isinstance(worker, ast.Attribute) and \
                        isinstance(worker.value, ast.Name) and \
                        worker.value.id == "self":
                    yield self.finding(
                        module, node,
                        "bound-method worker drags its instance (live sim "
                        "state) across the process boundary; use a "
                        "top-level function")
