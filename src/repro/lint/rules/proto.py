"""PROTO-class rules: RPC message-vocabulary conformance.

The cluster's RPC surface is stringly typed: a sender builds
``{"kind": "tpush", ...}`` and a handler three modules away matches
``elif kind == "tpush":`` — nothing but convention keeps the two in
sync. These rules extract both halves of the vocabulary from the
:class:`~repro.lint.graph.ProjectIndex` (send sites through one-hop
builder helpers and ``kind=`` parameter indirection; handler branches
with their payload reads, direct and via the call graph) and flag the
three drift modes: a kind sent that no handler matches, a handler for a
kind nothing sends, and a payload key a handler requires that no send
site of that kind provides.

Kindless sends (the pairwise λ-sync bodies) are matched against the
``else`` arm of dispatchers that demonstrably share an RPC op with the
kinds they *do* name; a dispatcher whose ops cannot be linked to any
send is left alone. All checks go silent rather than guess when a kind
or body is dynamic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from ..core import Finding, ProjectRule, Severity, register
from ..graph import (DispatchBranch, FunctionSummary, ProjectIndex,
                     SendSite)

__all__ = ["SentButUnhandledRule", "HandledButNeverSentRule",
           "PayloadKeyMismatchRule"]

#: sentinel kinds resolved_sends() emits for unresolvable bodies.
_OPAQUE = ("<dynamic>", "<unknown>")

_Send = Tuple[FunctionSummary, SendSite, List[str]]


class _ProtocolModel:
    """Both halves of the RPC vocabulary, resolved project-wide."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        #: kind -> send sites carrying it (with their payload-key union)
        self.by_kind: Dict[str, List[_Send]] = {}
        #: kindless sends (no ``kind`` key in the body at all)
        self.kindless: List[_Send] = []
        #: True when some send's kind could not be resolved to constants
        self.has_dynamic_kind = False
        for fn, site, kinds, keys in index.resolved_sends():
            entry = (fn, site, keys)
            if not kinds:
                self.kindless.append(entry)
                continue
            for kind in kinds:
                if kind in _OPAQUE:
                    self.has_dynamic_kind = True
                else:
                    self.by_kind.setdefault(kind, []).append(entry)
        self.dispatches: List[Tuple[FunctionSummary, DispatchBranch]] = \
            index.dispatchers()
        self.handled_kinds: Set[str] = {
            branch.kind for _, branch in self.dispatches
            if branch.kind is not None}

    @classmethod
    def of(cls, index: ProjectIndex) -> "_ProtocolModel":
        model = index.memo.get("proto_model")
        if not isinstance(model, cls):
            model = cls(index)
            index.memo["proto_model"] = model
        return model

    # -- handler-side key requirements ------------------------------------
    def branch_required(self, fn: FunctionSummary,
                        branch: DispatchBranch) -> List[str]:
        """Payload keys *branch* requires: its own subscript reads, the
        reads of every function reachable from its calls, and the
        dispatcher's pre-branch (common) reads."""
        required = list(branch.required)
        roots = self.index.resolve_exprs(fn, branch.calls)
        for qual in sorted(self.index.reachable(roots)):
            for key in self.index.functions[qual].body_required:
                if key not in required:
                    required.append(key)
        for key in self.dispatcher_common_required(fn):
            if key not in required:
                required.append(key)
        return required

    def dispatcher_common_required(self,
                                   fn: FunctionSummary) -> List[str]:
        """Keys *fn* reads by subscript outside any dispatch branch."""
        branch_reads: Set[str] = set()
        for branch in fn.dispatches:
            branch_reads.update(branch.required)
            branch_reads.update(branch.optional)
        return [key for key in fn.body_required if key not in branch_reads]

    def dispatcher_ops(self, fn: FunctionSummary) -> Set[str]:
        """RPC ops evidenced to route to dispatcher *fn*: the ops of
        every send site whose kind *fn* names a branch for."""
        ops: Set[str] = set()
        for branch in fn.dispatches:
            if branch.kind is None:
                continue
            for _, site, _ in self.by_kind.get(branch.kind, []):
                ops.add(site.op)
        return ops

    def sent_keys(self, sends: List[_Send]) -> Set[str]:
        """Union of payload keys over *sends* (conservative: a key any
        variant of the message can carry is considered provided)."""
        keys: Set[str] = set()
        for _, site, site_keys in sends:
            keys.update(site_keys)
        return keys


def _site_list(sends: List[_Send], limit: int = 3) -> str:
    locs = sorted({f"{fn.qualname.split(':', 1)[0]}:{site.line}"
                   for fn, site, _ in sends})
    shown = ", ".join(locs[:limit])
    if len(locs) > limit:
        shown += f", +{len(locs) - limit} more"
    return shown


@register
class SentButUnhandledRule(ProjectRule):
    """PROTO101: an RPC kind is sent but no dispatcher matches it.

    The message crosses the wire and falls into the receiver's ``else``
    (or error) arm: the sender's state machine believes work happened
    that never did. This is exactly how a renamed tree-sync kind or a
    deleted handler branch fails — silently, N servers at a time.
    """

    id = "PROTO101"
    severity = Severity.ERROR
    title = "RPC kind sent but never handled"
    rationale = ("every kind= a sender emits must be matched by some "
                 "dispatcher branch, or the message is silently dropped")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        model = _ProtocolModel.of(index)
        if not model.handled_kinds:
            # No kind dispatcher resolved anywhere (e.g. table-driven
            # dispatch the extractor cannot see): stay silent rather
            # than flag the whole send surface.
            return
        for kind in sorted(model.by_kind):
            if kind in model.handled_kinds:
                continue
            for fn, site, _ in model.by_kind[kind]:
                module = fn.qualname.split(":", 1)[0]
                yield self.at(
                    index.files[module].path, site.line, site.col,
                    f"RPC kind '{kind}' (op '{site.op}') is sent here but "
                    "no dispatcher branch handles it; the receiver will "
                    "drop it on the floor")


@register
class HandledButNeverSentRule(ProjectRule):
    """PROTO102: a dispatcher branch matches a kind nothing sends.

    Dead protocol arms are how payload-key drift hides: the handler
    keeps compiling against a message shape that stopped existing. A
    handler kept for wire compatibility can carry a waiver saying so.
    """

    id = "PROTO102"
    severity = Severity.WARNING
    title = "RPC kind handled but never sent"
    rationale = ("a dispatch branch no send site targets is dead protocol "
                 "surface and hides payload drift")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        model = _ProtocolModel.of(index)
        if model.has_dynamic_kind:
            # Some send's kind is only known at runtime; it could target
            # any branch, so "never sent" cannot be proven.
            return
        for fn, branch in model.dispatches:
            if branch.kind is None or branch.kind in model.by_kind:
                continue
            module = fn.qualname.split(":", 1)[0]
            yield self.at(
                index.files[module].path, branch.line, branch.col,
                f"dispatcher branch for RPC kind '{branch.kind}' is dead: "
                "no send site in the project produces this kind")


@register
class PayloadKeyMismatchRule(ProjectRule):
    """PROTO103: a handler requires a payload key no send site provides.

    A handler's ``body["key"]`` is a prophecy of KeyError: it must hold
    for every message variant of that kind. Keys are collected through
    the handler's reachable callees and compared against the *union* of
    keys across the kind's send sites, so optional-by-design fields
    provided by any variant never false-positive.
    """

    id = "PROTO103"
    severity = Severity.ERROR
    title = "handler requires payload key no sender provides"
    rationale = ("body[\"k\"] in a handler must be satisfied by every "
                 "send site of that kind, or the merge dies mid-protocol")

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        model = _ProtocolModel.of(index)
        for fn, branch in model.dispatches:
            module = fn.qualname.split(":", 1)[0]
            path = index.files[module].path
            if branch.kind is not None:
                sends = model.by_kind.get(branch.kind, [])
                if not sends:
                    continue          # PROTO102's finding, not ours
                label = f"kind '{branch.kind}'"
            else:
                ops = model.dispatcher_ops(fn)
                sends = [entry for entry in model.kindless
                         if entry[1].op in ops]
                if not sends:
                    continue          # no kindless traffic routes here
                label = "kindless sends"
            provided = model.sent_keys(sends)
            for key in model.branch_required(fn, branch):
                if key == "kind" and branch.kind is None:
                    continue      # the else-arm often logs the kind
                if key not in provided:
                    yield self.at(
                        path, branch.line, branch.col,
                        f"handler branch for {label} requires payload key "
                        f"'{key}' that no matching send site provides "
                        f"(sends at {_site_list(sends)})")
