"""Output renderers: SARIF 2.1.0 and GitHub workflow annotations.

The default text format is rendered by the runner itself; these two
exist for CI. SARIF feeds code-scanning upload (PR diff annotations
with rule metadata); the github format prints ``::error``-style
workflow commands that annotate the run without any upload step. Both
render only *new* findings — baselined ones are accepted debt and
would bury the signal.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .core import Finding, Rule, Severity

__all__ = ["to_sarif", "to_github", "FORMATS"]

FORMATS = ("text", "sarif", "github")

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")

_SARIF_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning",
                Severity.ADVISORY: "note"}

_GH_COMMAND = {Severity.ERROR: "error", Severity.WARNING: "warning",
               Severity.ADVISORY: "notice"}


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": type(rule).__name__,
        "shortDescription": {"text": rule.title},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {"level": _SARIF_LEVEL[rule.severity]},
    }


def _result(finding: Finding) -> Dict[str, Any]:
    return {
        "ruleId": finding.rule,
        "level": _SARIF_LEVEL[finding.severity],
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path.replace("\\", "/"),
                    "uriBaseId": "%SRCROOT%",
                },
                "region": {
                    "startLine": max(1, finding.line),
                    # SARIF columns are 1-based; ast's are 0-based.
                    "startColumn": finding.col + 1,
                },
            },
        }],
    }


def to_sarif(findings: List[Finding], rules: List[Rule]) -> Dict[str, Any]:
    """One SARIF 2.1.0 log for *findings*, carrying *rules* metadata."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-lint",
                    "informationUri":
                        "https://example.invalid/repro/DESIGN.md",
                    "rules": [_rule_descriptor(rule) for rule in rules],
                },
            },
            "results": [_result(finding) for finding in findings],
        }],
    }


def to_github(findings: List[Finding]) -> List[str]:
    """GitHub workflow-command annotation lines for *findings*."""
    lines: List[str] = []
    for finding in findings:
        command = _GH_COMMAND[finding.severity]
        # Workflow-command property values escape %, CR, LF, ',' and
        # ':' per the actions toolkit; the message part only the first
        # three.
        message = (finding.message.replace("%", "%25")
                   .replace("\r", "%0D").replace("\n", "%0A"))
        path = (finding.path.replace("\\", "/").replace("%", "%25")
                .replace(",", "%2C").replace(":", "%3A"))
        lines.append(
            f"::{command} file={path},line={max(1, finding.line)},"
            f"col={finding.col + 1},title={finding.rule}::{message}")
    return lines
