"""Inline waivers: ``# lint: disable=RULE[,RULE...] -- reason``.

A waiver on a code line suppresses matching findings *on that line*; a
waiver comment standing alone on its own line covers the next line
(for statements too long to carry a trailing comment). The ``--
reason`` clause is mandatory: a waiver without a justification is
itself a finding (LINT001), and a waiver that suppresses nothing is
reported as stale (LINT002) so dead waivers cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from .core import Finding, Module, Severity

__all__ = ["Waiver", "WaiverSet", "collect_waivers"]

_WAIVER_RE = re.compile(r"#\s*lint:\s*disable=([A-Za-z0-9_,\- ]+?)"
                        r"(?:\s*--\s*(.*))?\s*$")
_STANDALONE_RE = re.compile(r"^\s*#")


@dataclass
class Waiver:
    """One parsed waiver comment."""

    rules: Tuple[str, ...]
    reason: str
    comment_line: int      # where the comment sits
    target_line: int       # the line whose findings it suppresses
    used: bool = False


@dataclass
class WaiverSet:
    """All waivers of one module, indexed by (rule, target line)."""

    waivers: List[Waiver] = field(default_factory=list)
    _index: Dict[Tuple[str, int], Waiver] = field(default_factory=dict)

    def add(self, waiver: Waiver) -> None:
        """Register *waiver* for lookup by (rule, target line)."""
        self.waivers.append(waiver)
        for rule in waiver.rules:
            self._index.setdefault((rule, waiver.target_line), waiver)

    def suppresses(self, finding: Finding) -> bool:
        """True (and marks the waiver used) if *finding* is waived."""
        waiver = self._index.get((finding.rule, finding.line))
        if waiver is None:
            return False
        waiver.used = True
        return True

    def stale(self) -> List[Waiver]:
        """Waivers that suppressed no finding in this run."""
        return [w for w in self.waivers if not w.used]


def collect_waivers(module: Module) -> Tuple[WaiverSet, List[Finding]]:
    """Parse every waiver comment in *module*.

    Returns the waiver set plus meta-findings: LINT001 for a waiver
    missing its ``-- reason`` clause (the waiver is ignored, so the
    underlying finding still fires).
    """
    waivers = WaiverSet()
    problems: List[Finding] = []
    for lineno, text, standalone in _comment_lines(module):
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rules = tuple(r.strip() for r in match.group(1).split(",")
                      if r.strip())
        reason = (match.group(2) or "").strip()
        if not reason:
            problems.append(Finding(
                rule="LINT001", severity=Severity.ERROR,
                path=module.path, line=lineno, col=0,
                message="waiver missing '-- reason' justification; "
                        "waiver ignored"))
            continue
        target = lineno + 1 if standalone else lineno
        waivers.add(Waiver(rules=rules, reason=reason,
                           comment_line=lineno, target_line=target))
    return waivers, problems


def _comment_lines(module: Module) -> Iterator[Tuple[int, str, bool]]:
    """(lineno, comment text, standalone?) for each real comment token.

    Tokenizing (rather than scanning raw lines) keeps waiver-shaped
    text inside string literals from being parsed as a waiver.
    """
    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(module.source).readline))
    except (tokenize.TokenError, IndentationError):
        return
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        line = tok.line.rstrip("\n")
        standalone = _STANDALONE_RE.match(line) is not None
        yield tok.start[0], tok.string, standalone


def stale_waiver_findings(module: Module,
                          waivers: WaiverSet) -> List[Finding]:
    """LINT002 advisories for waivers that suppressed nothing."""
    out: List[Finding] = []
    for waiver in waivers.stale():
        out.append(Finding(
            rule="LINT002", severity=Severity.ADVISORY,
            path=module.path, line=waiver.comment_line, col=0,
            message=f"stale waiver for {', '.join(waiver.rules)}: "
                    "no finding on its target line"))
    return out
