"""Committed baseline of grandfathered findings.

The baseline is a JSON file mapping finding fingerprints to an allowed
occurrence count plus a human justification. A finding whose
``(rule, path, line-hash)`` fingerprint has remaining budget in the
baseline is reported as *baselined* and does not fail the run; a new
finding (or an extra occurrence beyond the budget) does. Deleting an
entry and re-running therefore reproduces the original failure —
the enforcement is auditable, not advisory.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .core import Finding, Module

__all__ = ["Baseline", "BaselineError"]

_VERSION = 1

Fingerprint = Tuple[str, str, str]  # (rule, path, line hash)


class BaselineError(ValueError):
    """Malformed baseline file."""


@dataclass
class Baseline:
    """Occurrence budgets keyed by finding fingerprint."""

    entries: Dict[Fingerprint, int] = field(default_factory=dict)
    reasons: Dict[Fingerprint, str] = field(default_factory=dict)
    path: Optional[str] = None

    # ------------------------------------------------------------- file IO
    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as fh:
            try:
                payload = json.load(fh)
            except json.JSONDecodeError as exc:
                raise BaselineError(f"{path}: invalid JSON: {exc}") from exc
        if not isinstance(payload, dict) or payload.get("version") != _VERSION:
            raise BaselineError(
                f"{path}: expected a version-{_VERSION} baseline object")
        baseline = cls(path=path)
        for raw in payload.get("entries", []):
            try:
                fp = (raw["rule"], raw["path"], raw["line_hash"])
                count = int(raw.get("count", 1))
            except (KeyError, TypeError, ValueError) as exc:
                raise BaselineError(f"{path}: bad entry {raw!r}") from exc
            baseline.entries[fp] = baseline.entries.get(fp, 0) + count
            if raw.get("reason"):
                baseline.reasons[fp] = str(raw["reason"])
        return baseline

    @classmethod
    def load_or_empty(cls, path: Optional[str]) -> "Baseline":
        if path and os.path.exists(path):
            return cls.load(path)
        return cls(path=path)

    def save(self, path: Optional[str] = None) -> str:
        """Write the baseline as sorted JSON; returns the path written."""
        path = path or self.path
        if not path:
            raise BaselineError("no baseline path to write to")
        entries = []
        for fp in sorted(self.entries):
            rule, fpath, line_hash = fp
            entry = {"rule": rule, "path": fpath, "line_hash": line_hash,
                     "count": self.entries[fp]}
            if fp in self.reasons:
                entry["reason"] = self.reasons[fp]
            entries.append(entry)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"version": _VERSION, "entries": entries}, fh,
                      indent=2, sort_keys=True)
            fh.write("\n")
        return path

    # ----------------------------------------------------------- matching
    def split(self, findings: List[Finding],
              modules: Dict[str, Module]
              ) -> Tuple[List[Finding], List[Finding]]:
        """Partition *findings* into (new, baselined).

        Each baseline entry's count is a budget: the first *count*
        occurrences of a fingerprint are grandfathered, any further
        occurrence is new.
        """
        budget = dict(self.entries)
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            module = modules.get(finding.path)
            line = module.line_text(finding.line) if module else ""
            fp = finding.fingerprint(line)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                old.append(finding)
            else:
                new.append(finding)
        return new, old

    @classmethod
    def from_findings(cls, findings: List[Finding],
                      modules: Dict[str, Module],
                      path: Optional[str] = None) -> "Baseline":
        """A baseline grandfathering exactly the given findings."""
        baseline = cls(path=path)
        for finding in findings:
            module = modules.get(finding.path)
            line = module.line_text(finding.line) if module else ""
            fp = finding.fingerprint(line)
            baseline.entries[fp] = baseline.entries.get(fp, 0) + 1
            baseline.reasons.setdefault(
                fp, "grandfathered by --write-baseline; fix or justify")
        return baseline
