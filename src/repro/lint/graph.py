"""Whole-program semantic model: symbol table, call graph, protocol map.

The per-file rules of :mod:`repro.lint.rules` see one AST at a time;
the failure modes that matter at cluster scale are *interprocedural* —
an RPC kind some sender emits that no handler matches, a
"trace-neutral" toggle whose guarded branch reaches a scheduler-state
mutation through two helper calls, an RNG draw laundered through a
wrapper. This module extracts a compact, JSON-serialisable
:class:`FileSummary` from each source file (so the incremental cache
can persist it) and assembles the summaries into a
:class:`ProjectIndex`: name resolution for imports and ``self.``
methods, conservative call edges, reachability, and the catalogues the
PROTO/TRACE/DET project rules consume.

Soundness stance (see DESIGN.md §14): resolution is *conservative for
silence* — a call that cannot be resolved (dynamic dispatch through an
arbitrary object whose method name is not project-unique) produces no
edge and therefore no finding, never a false positive. Payload-key
checks union keys across all send sites of a kind, so a key any sender
provides is never reported missing.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import (Any, Deque, Dict, Iterable, List, Optional, Set,
                    Tuple)

from .core import Module, dotted_name

__all__ = [
    "CallRef", "SendSite", "DispatchBranch", "ToggleGuard", "ToggleFlag",
    "FunctionSummary", "ClassSummary", "FileSummary", "ProjectIndex",
    "summarize_module", "module_dotted_name", "SCHEMA_VERSION",
]

#: Bump when the summary shape changes (invalidates the on-disk cache).
SCHEMA_VERSION = 3

#: Dict/set/list methods whose call mutates the receiver.
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "add", "insert", "extend", "remove", "discard",
    "pop", "popleft", "popitem", "clear", "update", "setdefault", "merge",
    "observe", "expire", "deactivate",
})

#: Builtin container/str method names the unique-bare-name resolution
#: fallback must never match: ``some_dict.pop(...)`` would otherwise
#: resolve to the one project function that happens to be named
#: ``pop``, creating false call-graph edges (and false TRACE findings).
#: Project-specific verbs (merge, observe, ...) stay resolvable.
_BUILTIN_METHOD_NAMES = frozenset({
    "append", "appendleft", "add", "insert", "extend", "remove",
    "discard", "pop", "popleft", "popitem", "clear", "update",
    "setdefault", "get", "keys", "values", "items", "copy", "count",
    "index", "sort", "reverse", "split", "join", "strip", "format",
    "encode", "decode",
})

#: The payload key carrying an RPC message's discriminator.
_KIND_KEY = "kind"


# --------------------------------------------------------------- summaries
@dataclass
class CallRef:
    """One call site, as seen from inside its enclosing function.

    ``expr`` is the dotted callee path (``"self._answer_pull"``,
    ``"controller.tree_order"``); a call whose base is itself a call or
    subscript keeps only the final attribute as ``"?.<attr>"`` so the
    by-unique-name fallback can still consider it.
    """

    expr: str
    line: int
    col: int
    pos_consts: List[Optional[str]] = field(default_factory=list)
    kw_consts: Dict[str, str] = field(default_factory=dict)
    #: True when the call is the iterated expression of a for-loop or
    #: comprehension (without a ``sorted(...)`` wrapper in between).
    in_iter: bool = False


@dataclass
class SendSite:
    """One RPC send: ``<client>.call(op, body, ...)``.

    ``kind`` is the body's constant ``kind`` value; ``kind_param`` names
    the enclosing-function parameter the kind flows from (resolved
    project-wide from caller constants + the default); both ``None``
    means the body carries no ``kind`` key (a *kindless* send, matched
    against a dispatcher's ``else`` branch). ``keys`` is the union of
    payload keys the body can carry; ``body_call`` names the callee the
    body was returned from, for one-hop flattening through helpers like
    ``_encode_push``.
    """

    op: str
    line: int
    col: int
    kind: Optional[str] = None
    kind_param: Optional[str] = None
    kind_dynamic: bool = False
    keys: List[str] = field(default_factory=list)
    body_call: Optional[str] = None
    body_known: bool = True


@dataclass
class DispatchBranch:
    """One arm of a ``kind ==`` dispatcher chain (``kind=None`` = else)."""

    kind: Optional[str]
    line: int
    col: int
    calls: List[str] = field(default_factory=list)
    required: List[str] = field(default_factory=list)
    optional: List[str] = field(default_factory=list)


@dataclass
class ToggleGuard:
    """One ``if`` statement tested against a toggle flag or getter.

    ``on_*`` describe the suite executed when the toggle is *enabled*,
    ``off_*`` the suite executed when it is disabled (for an
    early-return guard, the statements following the ``if``).
    """

    toggle: str          # flag name or getter call expr, as written
    line: int
    col: int
    on_calls: List[str] = field(default_factory=list)
    off_calls: List[str] = field(default_factory=list)
    on_mutations: List[str] = field(default_factory=list)
    off_mutations: List[str] = field(default_factory=list)


@dataclass
class ToggleFlag:
    """One module-level trace-neutrality toggle (``_X_ENABLED`` style)."""

    name: str
    module: str
    line: int
    setter: Optional[str] = None   # qualname of the set_* function
    getter: Optional[str] = None   # qualname of the zero-arg reader


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    name: str
    qualname: str                 # "<module>:<Class>.<name>" / "<module>:<name>"
    cls: Optional[str]
    line: int
    col: int
    params: List[str] = field(default_factory=list)
    param_str_defaults: Dict[str, str] = field(default_factory=dict)
    calls: List[CallRef] = field(default_factory=list)
    sends: List[SendSite] = field(default_factory=list)
    dispatches: List[DispatchBranch] = field(default_factory=list)
    guards: List[ToggleGuard] = field(default_factory=list)
    #: payload keys read off an ``<obj>.body`` root: ``body["k"]`` vs
    #: ``body.get("k")``.
    body_required: List[str] = field(default_factory=list)
    body_optional: List[str] = field(default_factory=list)
    #: ``self.<attr>`` names this function assigns/augments/mutates.
    mutations: List[str] = field(default_factory=list)
    #: (line, col) per mutation, aligned with ``mutations``.
    mutation_locs: List[Tuple[int, int]] = field(default_factory=list)
    returns_set: bool = False
    #: dotted exprs of calls whose result this function returns (first
    #: tuple element counts: message-builder helpers return (dict, ...)).
    return_calls: List[str] = field(default_factory=list)
    #: message dict this function returns: (keys, kind, kind_param).
    returns_msg_keys: Optional[List[str]] = None
    returns_msg_kind: Optional[str] = None
    returns_msg_kind_param: Optional[str] = None
    #: call sites that construct an RNG through a module-level alias of
    #: a banned numpy constructor (DET006 anchors).
    rng_alias_calls: List[Tuple[int, int, str]] = field(default_factory=list)
    #: True if a banned-ctor (direct or aliased) result is returned.
    returns_rng: bool = False
    #: module-level names rebound via ``global`` in this function.
    global_writes: List[str] = field(default_factory=list)


@dataclass
class ClassSummary:
    name: str
    module: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: List[str] = field(default_factory=list)


@dataclass
class FileSummary:
    """The serialisable semantic digest of one source file."""

    path: str
    module: str                   # dotted module name
    scope: str
    imports: Dict[str, str] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    toggles: List[ToggleFlag] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FileSummary":
        out = cls(path=payload["path"], module=payload["module"],
                  scope=payload["scope"],
                  imports=dict(payload.get("imports", {})))
        for name, raw in payload.get("classes", {}).items():
            out.classes[name] = ClassSummary(**raw)
        for qual, raw in payload.get("functions", {}).items():
            fn = FunctionSummary(
                name=raw["name"], qualname=raw["qualname"], cls=raw["cls"],
                line=raw["line"], col=raw["col"])
            fn.params = list(raw.get("params", []))
            fn.param_str_defaults = dict(raw.get("param_str_defaults", {}))
            fn.calls = [CallRef(**c) for c in raw.get("calls", [])]
            fn.sends = [SendSite(**s) for s in raw.get("sends", [])]
            fn.dispatches = [DispatchBranch(**d)
                             for d in raw.get("dispatches", [])]
            fn.guards = [ToggleGuard(**g) for g in raw.get("guards", [])]
            fn.body_required = list(raw.get("body_required", []))
            fn.body_optional = list(raw.get("body_optional", []))
            fn.mutations = list(raw.get("mutations", []))
            fn.mutation_locs = [tuple(loc)  # type: ignore[misc]
                                for loc in raw.get("mutation_locs", [])]
            fn.returns_set = bool(raw.get("returns_set", False))
            fn.return_calls = list(raw.get("return_calls", []))
            fn.returns_msg_keys = raw.get("returns_msg_keys")
            fn.returns_msg_kind = raw.get("returns_msg_kind")
            fn.returns_msg_kind_param = raw.get("returns_msg_kind_param")
            fn.rng_alias_calls = [tuple(c)  # type: ignore[misc]
                                  for c in raw.get("rng_alias_calls", [])]
            fn.returns_rng = bool(raw.get("returns_rng", False))
            fn.global_writes = list(raw.get("global_writes", []))
            out.functions[qual] = fn
        out.toggles = [ToggleFlag(**t) for t in payload.get("toggles", [])]
        return out


# ----------------------------------------------------------- module naming
def module_dotted_name(path: str) -> str:
    """Dotted module name derived from the ``__init__.py`` package chain.

    Walks up from the file while sibling ``__init__.py`` files exist, so
    ``src/repro/bb/controller.py`` names ``repro.bb.controller``
    wherever the tree is checked out. A file outside any package keeps
    its bare stem.
    """
    import os
    norm = os.path.normpath(path)
    head, tail = os.path.split(norm)
    stem = tail[:-3] if tail.endswith(".py") else tail
    parts = [stem] if stem != "__init__" else []
    while head and os.path.isfile(os.path.join(head, "__init__.py")):
        head, pkg = os.path.split(head)
        parts.append(pkg)
        if not pkg:
            break
    return ".".join(reversed(parts)) if parts else stem


# ------------------------------------------------------------- extraction
_SET_ANNOTATIONS = {"set", "Set", "frozenset", "FrozenSet", "AbstractSet",
                    "MutableSet"}

#: numpy constructors whose aliased call is a second seeding root.
_RNG_CTOR_SUFFIXES = ("random.default_rng", "random.RandomState",
                      "random.Generator", "random.PCG64")


def _const_str(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _walk_own(node: ast.AST) -> Iterable[ast.AST]:
    """Walk *node*'s subtree without descending into nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.ClassDef)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _walk_suite(stmts: Iterable[ast.stmt]) -> Iterable[ast.AST]:
    for stmt in stmts:
        yield stmt
        yield from _walk_own(stmt)


def _callee_expr(func: ast.AST) -> Optional[str]:
    """Dotted callee path, or ``"?.<attr>"`` for an unresolvable base."""
    name = dotted_name(func)
    if name is not None:
        return name
    if isinstance(func, ast.Attribute):
        return "?." + func.attr
    return None


def _suite_terminates(stmts: List[ast.stmt]) -> bool:
    if not stmts:
        return False
    last = stmts[-1]
    return isinstance(last, (ast.Return, ast.Raise, ast.Continue, ast.Break))


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    base: ast.AST = node
    if isinstance(base, ast.Subscript):
        base = base.value
    name = dotted_name(base)
    if name is None:
        return False
    return name.split(".")[-1] in _SET_ANNOTATIONS


class _DictTracker:
    """Flow-insensitive, per-function tracking of message-dict names.

    A name assigned a dict literal (or ``dict(base, k=v)`` over a
    tracked base) accumulates the union of keys it can carry; later
    ``name["k"] = v`` stores add to it. The union is conservative for
    silence: a handler key present at *any* point of the builder is
    never reported missing.
    """

    def __init__(self) -> None:
        # name -> (keys, kind const, kind param, kind dynamic)
        self.dicts: Dict[str, Dict[str, Any]] = {}
        # name -> callee expr (tuple element 0 of the callee's return)
        self.from_call: Dict[str, str] = {}

    def spec_of_literal(self, node: ast.Dict,
                        params: Set[str]) -> Dict[str, Any]:
        keys: List[str] = []
        spec: Dict[str, Any] = {"keys": keys, "kind": None,
                                "kind_param": None, "dynamic": False}
        for key_node, value in zip(node.keys, node.values):
            key = _const_str(key_node) if key_node is not None else None
            if key is None:
                if key_node is None and isinstance(value, ast.Name) and \
                        value.id in self.dicts:
                    # ``{**base, ...}`` over a tracked base.
                    base = self.dicts[value.id]
                    keys.extend(k for k in base["keys"] if k not in keys)
                    if spec["kind"] is None:
                        spec["kind"] = base["kind"]
                        spec["kind_param"] = base["kind_param"]
                        spec["dynamic"] = spec["dynamic"] or base["dynamic"]
                continue
            if key not in keys:
                keys.append(key)
            if key == _KIND_KEY:
                const = _const_str(value)
                if const is not None:
                    spec["kind"] = const
                elif isinstance(value, ast.Name) and value.id in params:
                    spec["kind_param"] = value.id
                else:
                    spec["dynamic"] = True
        return spec

    def spec_of(self, node: ast.AST,
                params: Set[str]) -> Optional[Dict[str, Any]]:
        """Message spec of an expression, if it is dict-resolvable."""
        if isinstance(node, ast.Dict):
            return self.spec_of_literal(node, params)
        if isinstance(node, ast.Name):
            return self.dicts.get(node.id)
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name == "dict":
                spec: Dict[str, Any] = {"keys": [], "kind": None,
                                        "kind_param": None, "dynamic": False}
                if node.args:
                    base = self.spec_of(node.args[0], params)
                    if base is not None:
                        spec = {"keys": list(base["keys"]),
                                "kind": base["kind"],
                                "kind_param": base["kind_param"],
                                "dynamic": base["dynamic"]}
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg not in spec["keys"]:
                        spec["keys"].append(kw.arg)
                    if kw.arg == _KIND_KEY:
                        const = _const_str(kw.value)
                        spec["dynamic"] = const is None
                        spec["kind"] = const
                        spec["kind_param"] = None
                return spec
        return None

    def observe(self, stmt: ast.stmt, params: Set[str]) -> None:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
            value = stmt.value
            # name["key"] = v augments a tracked dict.
            if len(targets) == 1 and isinstance(targets[0], ast.Subscript):
                sub = targets[0]
                if isinstance(sub.value, ast.Name) and \
                        sub.value.id in self.dicts:
                    key = _const_str(sub.slice)
                    if key is not None:
                        keys = self.dicts[sub.value.id]["keys"]
                        if key not in keys:
                            keys.append(key)
                return
            spec = self.spec_of(value, params)
            names: List[str] = []
            for target in targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, ast.Tuple) and target.elts and \
                        isinstance(target.elts[0], ast.Name):
                    # ``push, wire = self._encode_push(...)``
                    names.append(target.elts[0].id)
            if not names:
                return
            if spec is not None:
                for name in names:
                    self.dicts[name] = {"keys": list(spec["keys"]),
                                        "kind": spec["kind"],
                                        "kind_param": spec["kind_param"],
                                        "dynamic": spec["dynamic"]}
                    self.from_call.pop(name, None)
                return
            if isinstance(value, ast.Call):
                callee = _callee_expr(value.func)
                if callee is not None and callee != "dict":
                    for name in names:
                        self.from_call[name] = callee
                        self.dicts.pop(name, None)
                    return
            for name in names:
                self.dicts.pop(name, None)
                self.from_call.pop(name, None)


class _FunctionExtractor:
    """One pass over a function body filling its :class:`FunctionSummary`."""

    def __init__(self, summary: FunctionSummary,
                 rng_aliases: Set[str]) -> None:
        self.s = summary
        self.rng_aliases = rng_aliases
        self.params = set(summary.params)
        self.dicts = _DictTracker()
        #: (line, col) of calls sitting in iteration position.
        self.iter_call_locs: Set[Tuple[int, int]] = set()
        #: local names rooted at a ``<x>.body`` attribute (payload roots).
        #: A parameter literally named ``body`` counts: handlers receive
        #: the payload dict directly (``_on_control(self, rpc)`` style
        #: code rebinds ``body = rpc.body`` first, which is also caught).
        self.body_roots: Set[str] = set()
        if "body" in self.params:
            self.body_roots.add("body")
        #: local names holding the payload's ``kind`` value.
        self.kind_vars: Set[str] = set()
        #: id()s of elif nodes already recorded as part of a dispatch
        #: chain; the block scan descends into them and must not record
        #: the chain suffix a second time.
        self._chain_tails: Set[int] = set()
        self._required: List[str] = []
        self._optional: List[str] = []

    # -- payload reads ----------------------------------------------------
    def _is_body_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "body":
            return True
        return isinstance(node, ast.Name) and node.id in self.body_roots

    def _collect_reads(self, nodes: Iterable[ast.AST],
                       required: List[str], optional: List[str]) -> None:
        for node in nodes:
            if isinstance(node, ast.Subscript) and \
                    self._is_body_expr(node.value) and \
                    isinstance(node.ctx, ast.Load):
                key = _const_str(node.slice)
                if key is not None and key not in required:
                    required.append(key)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr == "get" and \
                    self._is_body_expr(node.func.value) and node.args:
                key = _const_str(node.args[0])
                if key is not None and key not in optional:
                    optional.append(key)

    # -- statement scan ---------------------------------------------------
    def _observe_bindings(self, stmt: ast.stmt) -> None:
        self.dicts.observe(stmt, self.params)
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            return
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            return
        value = stmt.value
        if self._is_body_expr(value):
            self.body_roots.add(target.id)
        elif isinstance(value, ast.Subscript) and \
                self._is_body_expr(value.value) and \
                _const_str(value.slice) == _KIND_KEY:
            self.kind_vars.add(target.id)
        elif isinstance(value, ast.Call) and \
                isinstance(value.func, ast.Attribute) and \
                value.func.attr == "get" and \
                self._is_body_expr(value.func.value) and value.args and \
                _const_str(value.args[0]) == _KIND_KEY:
            self.kind_vars.add(target.id)

    def _record_call(self, node: ast.Call) -> None:
        expr = _callee_expr(node.func)
        if expr is None:
            return
        pos = [_const_str(a) for a in node.args]
        kws = {kw.arg: _const_str(kw.value) for kw in node.keywords
               if kw.arg is not None}
        self.s.calls.append(CallRef(
            expr=expr, line=node.lineno, col=node.col_offset,
            pos_consts=pos,
            kw_consts={k: v for k, v in kws.items() if v is not None},
            in_iter=(node.lineno, node.col_offset) in self.iter_call_locs))
        if isinstance(node.func, ast.Attribute) and node.func.attr == "call":
            self._record_send(node)
        base = dotted_name(node.func)
        if base is not None and base in self.rng_aliases:
            self.s.rng_alias_calls.append(
                (node.lineno, node.col_offset, base))

    def _record_send(self, node: ast.Call) -> None:
        if not node.args:
            return
        op = _const_str(node.args[0])
        if op is None:
            return
        body = node.args[1] if len(node.args) > 1 else None
        for kw in node.keywords:
            if kw.arg == "body":
                body = kw.value
        site = SendSite(op=op, line=node.lineno, col=node.col_offset)
        if body is None:
            site.body_known = False
        else:
            spec = self.dicts.spec_of(body, self.params)
            if spec is not None:
                site.keys = list(spec["keys"])
                site.kind = spec["kind"]
                site.kind_param = spec["kind_param"]
                site.kind_dynamic = bool(spec["dynamic"])
            elif isinstance(body, ast.Name) and \
                    body.id in self.dicts.from_call:
                site.body_call = self.dicts.from_call[body.id]
            elif isinstance(body, ast.Call):
                callee = _callee_expr(body.func)
                if callee is not None:
                    site.body_call = callee
                else:
                    site.body_known = False
            else:
                site.body_known = False
        self.s.sends.append(site)

    # -- kind dispatch ----------------------------------------------------
    def _kind_of_test(self, test: ast.AST) -> Optional[str]:
        """The constant compared against the kind var, if *test* is one."""
        if not isinstance(test, ast.Compare) or len(test.ops) != 1 or \
                not isinstance(test.ops[0], ast.Eq):
            return None
        left, right = test.left, test.comparators[0]
        for var, lit in ((left, right), (right, left)):
            const = _const_str(lit)
            if const is None:
                continue
            if isinstance(var, ast.Name) and var.id in self.kind_vars:
                return const
            if isinstance(var, ast.Subscript) and \
                    self._is_body_expr(var.value) and \
                    _const_str(var.slice) == _KIND_KEY:
                return const
        return None

    def _branch_summary(self, kind: Optional[str],
                        stmts: List[ast.stmt],
                        anchor: ast.AST) -> DispatchBranch:
        branch = DispatchBranch(kind=kind, line=anchor.lineno,
                                col=anchor.col_offset)
        for node in _walk_suite(stmts):
            if isinstance(node, ast.Call):
                expr = _callee_expr(node.func)
                if expr is not None:
                    branch.calls.append(expr)
        self._collect_reads(_walk_suite(stmts), branch.required,
                            branch.optional)
        return branch

    def _scan_dispatch(self, stmt: ast.If) -> bool:
        """Record *stmt* as a kind-dispatch chain; True if it was one."""
        if id(stmt) in self._chain_tails:
            return True  # suffix of a chain already recorded at its head
        chain: List[Tuple[str, ast.If]] = []
        node: ast.stmt = stmt
        while isinstance(node, ast.If):
            kind = self._kind_of_test(node.test)
            if kind is None:
                # A kindless elif stays guard-scannable on descent.
                return False if not chain else self._finish_dispatch(
                    chain, [node])
            if node is not stmt:
                self._chain_tails.add(id(node))
            chain.append((kind, node))
            orelse = node.orelse
            if len(orelse) == 1 and isinstance(orelse[0], ast.If):
                node = orelse[0]
                continue
            return self._finish_dispatch(chain, orelse)
        return False

    def _finish_dispatch(self, chain: List[Tuple[str, ast.If]],
                         orelse: List[ast.stmt]) -> bool:
        if not chain:
            return False
        for kind, node in chain:
            self.s.dispatches.append(
                self._branch_summary(kind, node.body, node))
        if orelse:
            self.s.dispatches.append(
                self._branch_summary(None, orelse, orelse[0]))
        return True

    # -- toggle guards ----------------------------------------------------
    def _toggles_in_test(self, test: ast.AST) -> List[Tuple[str, bool]]:
        """Every (toggle expr, positive polarity) *test* references.

        A toggle reference is an ALL-CAPS ``_X_ENABLED``-style name or a
        call to a ``*_enabled()`` getter; polarity is negative when the
        reference sits under a ``not``. With ``A and B`` the suite is
        reachable only when each conjunct's toggle is on, so one guard
        per toggle with the shared suites stays sound.
        """
        found: List[Tuple[str, bool]] = []

        def visit(node: ast.AST, positive: bool) -> None:
            if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
                visit(node.operand, not positive)
                return
            if isinstance(node, ast.BoolOp):
                for value in node.values:
                    visit(value, positive)
                return
            if isinstance(node, ast.Name) and _is_toggle_name(node.id):
                found.append((node.id, positive))
                return
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and \
                        name.split(".")[-1].endswith("_enabled"):
                    found.append((name, positive))
                return

        visit(test, True)
        return found

    def _scan_guard(self, stmt: ast.If,
                    following: List[ast.stmt]) -> None:
        for toggle, positive in self._toggles_in_test(stmt.test):
            on_suite, off_suite = stmt.body, stmt.orelse
            if not off_suite and _suite_terminates(stmt.body):
                off_suite = following
            if not positive:
                on_suite, off_suite = off_suite, on_suite
            guard = ToggleGuard(toggle=toggle, line=stmt.lineno,
                                col=stmt.col_offset)
            for node in _walk_suite(on_suite):
                if isinstance(node, ast.Call):
                    expr = _callee_expr(node.func)
                    if expr is not None:
                        guard.on_calls.append(expr)
            for node in _walk_suite(off_suite):
                if isinstance(node, ast.Call):
                    expr = _callee_expr(node.func)
                    if expr is not None:
                        guard.off_calls.append(expr)
            guard.on_mutations = _suite_self_mutations(on_suite)
            guard.off_mutations = _suite_self_mutations(off_suite)
            self.s.guards.append(guard)

    # -- drive ------------------------------------------------------------
    def run(self, func: ast.AST) -> None:
        body = list(getattr(func, "body", []))
        for node in _walk_suite(body):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if isinstance(it, ast.Call):
                    self.iter_call_locs.add((it.lineno, it.col_offset))
        self._scan_block(body)
        # Whole-function payload reads (handler surface).
        self._collect_reads(_walk_suite(body), self._required,
                            self._optional)
        self.s.body_required = self._required
        self.s.body_optional = [k for k in self._optional
                                if k not in self._required]
        self.s.mutations, self.s.mutation_locs = _self_mutations(body)
        self._scan_returns(body)
        for node in _walk_suite(body):
            if isinstance(node, ast.Global):
                self.s.global_writes.extend(node.names)

    def _scan_block(self, stmts: List[ast.stmt]) -> None:
        for i, stmt in enumerate(stmts):
            self._observe_bindings(stmt)
            for node in ([stmt] if not isinstance(stmt, (ast.FunctionDef,
                         ast.AsyncFunctionDef, ast.ClassDef)) else []):
                for sub in _iter_stmt_exprs(node):
                    for call in ast.walk(sub):
                        if isinstance(call, ast.Call):
                            self._record_call(call)
            if isinstance(stmt, ast.If):
                if not self._scan_dispatch(stmt):
                    self._scan_guard(stmt, stmts[i + 1:])
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
                self._scan_block(stmt.body)
                self._scan_block(stmt.orelse)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._scan_block(stmt.body)
            elif isinstance(stmt, ast.Try):
                self._scan_block(stmt.body)
                for handler in stmt.handlers:
                    self._scan_block(handler.body)
                self._scan_block(stmt.orelse)
                self._scan_block(stmt.finalbody)

    def _scan_returns(self, body: List[ast.stmt]) -> None:
        set_returns = 0
        returns = 0
        for node in _walk_suite(body):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            returns += 1
            value: ast.AST = node.value
            if isinstance(value, ast.Tuple) and value.elts:
                value = value.elts[0]
            if _is_set_expr(value):
                set_returns += 1
            spec = self.dicts.spec_of(value, self.params)
            if spec is not None:
                # Union across every message-returning path, so a
                # builder with a full and a delta form advertises both
                # shapes' keys.
                if self.s.returns_msg_keys is None:
                    self.s.returns_msg_keys = []
                self.s.returns_msg_keys.extend(
                    k for k in spec["keys"]
                    if k not in self.s.returns_msg_keys)
                if self.s.returns_msg_kind is None:
                    self.s.returns_msg_kind = spec["kind"]
                if self.s.returns_msg_kind_param is None:
                    self.s.returns_msg_kind_param = spec["kind_param"]
            if isinstance(value, ast.Call):
                callee = _callee_expr(value.func)
                if callee is not None:
                    self.s.return_calls.append(callee)
                name = dotted_name(value.func)
                if name is not None and (
                        name in self.rng_aliases or
                        any(name == sfx or name.endswith("." + sfx)
                            for sfx in _RNG_CTOR_SUFFIXES)):
                    self.s.returns_rng = True
            elif isinstance(value, ast.Name) and \
                    value.id in self.dicts.from_call:
                self.s.return_calls.append(self.dicts.from_call[value.id])
        if returns and set_returns == returns:
            self.s.returns_set = True


def _is_set_expr(node: ast.AST) -> bool:
    """Whether *node* syntactically evaluates to a set.

    Mirrors ``rules._util.SetExprTracker.is_set_expr`` minus the taint
    map (which needs per-function assignment flow the summary pass does
    not keep): literals, ``set()``/``frozenset()`` calls, and set-algebra
    operators over either form.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return dotted_name(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _iter_stmt_exprs(stmt: ast.stmt) -> Iterable[ast.AST]:
    """Expressions owned by *stmt* itself, not its nested suites."""
    for fname, value in ast.iter_fields(stmt):
        if fname in ("body", "orelse", "finalbody", "handlers"):
            continue
        if isinstance(value, ast.expr):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, ast.expr):
                    yield item


def _self_attr_of(node: ast.AST) -> Optional[str]:
    """``attr`` for a ``self.<attr>`` (or deeper) reference."""
    chain: List[str] = []
    while isinstance(node, ast.Attribute):
        chain.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name) and node.id == "self" and chain:
        return chain[-1]
    return None


def _self_mutations(stmts: List[ast.stmt]) -> Tuple[List[str],
                                                    List[Tuple[int, int]]]:
    attrs: List[str] = []
    locs: List[Tuple[int, int]] = []

    def record(attr: Optional[str], node: ast.AST) -> None:
        if attr is not None:
            attrs.append(attr)
            locs.append((getattr(node, "lineno", 1),
                         getattr(node, "col_offset", 0)))

    for node in _walk_suite(stmts):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    record(_self_attr_of(target), node)
                elif isinstance(target, ast.Subscript):
                    record(_self_attr_of(target.value), node)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Attribute):
                            record(_self_attr_of(elt), node)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Subscript):
                    record(_self_attr_of(target.value), node)
                elif isinstance(target, ast.Attribute):
                    record(_self_attr_of(target), node)
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS:
            record(_self_attr_of(node.func.value), node)
    return attrs, locs


def _suite_self_mutations(stmts: List[ast.stmt]) -> List[str]:
    return _self_mutations(stmts)[0]


def _is_toggle_name(name: str) -> bool:
    return name.isupper() and name.endswith("_ENABLED")


def _module_rng_aliases(tree: ast.Module) -> Set[str]:
    """Module-level names aliasing a banned numpy RNG constructor."""
    aliases: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            value = dotted_name(stmt.value)
            if value is not None and any(
                    value == sfx or value.endswith("." + sfx)
                    for sfx in _RNG_CTOR_SUFFIXES):
                aliases.add(stmt.targets[0].id)
        elif isinstance(stmt, ast.ImportFrom) and stmt.module and \
                stmt.module.startswith("numpy"):
            for alias in stmt.names:
                if alias.name in ("default_rng", "RandomState", "Generator",
                                  "PCG64"):
                    aliases.add(alias.asname or alias.name)
    return aliases


def summarize_module(module: Module) -> FileSummary:
    """Extract the :class:`FileSummary` of one parsed module."""
    assert module.tree is not None
    dotted = module_dotted_name(module.path)
    summary = FileSummary(path=module.path, module=dotted,
                          scope=module.scope)
    tree = module.tree
    rng_aliases = _module_rng_aliases(tree)

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                summary.imports[alias.asname or
                                alias.name.split(".")[0]] = alias.name
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module is None or stmt.level:
                base = _relative_base(dotted, stmt.level, stmt.module)
            else:
                base = stmt.module
            for alias in stmt.names:
                summary.imports[alias.asname or alias.name] = \
                    f"{base}.{alias.name}" if base else alias.name

    def add_function(func: ast.AST, cls: Optional[str]) -> None:
        name = getattr(func, "name", "<lambda>")
        qual = f"{dotted}:{cls}.{name}" if cls else f"{dotted}:{name}"
        args = getattr(func, "args")
        params = [a.arg for a in args.posonlyargs + args.args +
                  args.kwonlyargs]
        fn = FunctionSummary(name=name, qualname=qual, cls=cls,
                             line=func.lineno, col=func.col_offset,
                             params=params)
        defaults = list(args.defaults)
        if defaults:
            for param, default in zip(params[len(params) -
                                             len(defaults):], defaults):
                const = _const_str(default)
                if const is not None:
                    fn.param_str_defaults[param] = const
        for param, default in zip([a.arg for a in args.kwonlyargs],
                                  args.kw_defaults):
            if default is not None:
                const = _const_str(default)
                if const is not None:
                    fn.param_str_defaults[param] = const
        if _annotation_is_set(getattr(func, "returns", None)):
            fn.returns_set = True
        extractor = _FunctionExtractor(fn, rng_aliases)
        extractor.run(func)
        summary.functions[qual] = fn

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add_function(stmt, None)
            for nested in ast.walk(stmt):
                if nested is not stmt and isinstance(
                        nested, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add_function(nested, None)
        elif isinstance(stmt, ast.ClassDef):
            cls_summary = ClassSummary(
                name=stmt.name, module=dotted, line=stmt.lineno,
                bases=[b for b in (dotted_name(base)
                                   for base in stmt.bases) if b is not None])
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    cls_summary.methods.append(sub.name)
                    add_function(sub, stmt.name)
            summary.classes[stmt.name] = cls_summary

    summary.toggles = _collect_toggles(tree, dotted, summary)
    return summary


def _relative_base(dotted: str, level: int,
                   module: Optional[str]) -> str:
    """Absolute base module of a relative import inside *dotted*."""
    parts = dotted.split(".")
    # level 1 = current package; the module name itself is not a package.
    keep = len(parts) - level
    base_parts = parts[:keep] if keep > 0 else []
    if module:
        base_parts.append(module)
    return ".".join(base_parts)


def _collect_toggles(tree: ast.Module, dotted: str,
                     summary: FileSummary) -> List[ToggleFlag]:
    flags: Dict[str, ToggleFlag] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                isinstance(stmt.targets[0], ast.Name):
            name = stmt.targets[0].id
            if _is_toggle_name(name) and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, bool):
                flags[name] = ToggleFlag(name=name, module=dotted,
                                         line=stmt.lineno)
    for qual in sorted(summary.functions):
        fn = summary.functions[qual]
        for written in fn.global_writes:
            flag = flags.get(written)
            if flag is not None and flag.setter is None:
                flag.setter = qual
        # a zero-arg getter: single return of the flag name.
        if not fn.params and fn.name.endswith("_enabled"):
            flag2 = flags.get(_getter_flag_name(tree, fn.name))
            if flag2 is not None and flag2.getter is None:
                flag2.getter = qual
    return [flags[name] for name in sorted(flags)]


def _getter_flag_name(tree: ast.Module, getter: str) -> str:
    """The flag a ``x_enabled()`` getter returns (by AST inspection)."""
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == getter:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Return) and \
                        isinstance(node.value, ast.Name):
                    return node.value.id
    return ""


# ------------------------------------------------------------------ index
class ProjectIndex:
    """Symbol table + call graph over every src-scope file summary."""

    def __init__(self, summaries: Iterable[FileSummary]) -> None:
        self.files: Dict[str, FileSummary] = {}
        self.functions: Dict[str, FunctionSummary] = {}
        self.classes: Dict[str, ClassSummary] = {}        # "module:Class"
        self._class_by_name: Dict[str, List[str]] = {}
        self._fn_by_bare_name: Dict[str, List[str]] = {}
        self._method_index: Dict[Tuple[str, str], str] = {}
        self.toggles: Dict[str, ToggleFlag] = {}          # "module:NAME"
        #: scratch space for rules sharing derived analyses (e.g. the
        #: PROTO rules' protocol model) across one lint invocation.
        self.memo: Dict[str, Any] = {}
        for summary in summaries:
            self.files[summary.module] = summary
            for qual, fn in summary.functions.items():
                self.functions[qual] = fn
                self._fn_by_bare_name.setdefault(fn.name, []).append(qual)
            for cls in summary.classes.values():
                key = f"{summary.module}:{cls.name}"
                self.classes[key] = cls
                self._class_by_name.setdefault(cls.name, []).append(key)
                for method in cls.methods:
                    self._method_index[(key, method)] = \
                        f"{summary.module}:{cls.name}.{method}"
            for toggle in summary.toggles:
                self.toggles[f"{toggle.module}:{toggle.name}"] = toggle
        self._edges: Dict[str, List[str]] = {}
        self._build_edges()

    # -- resolution -------------------------------------------------------
    def _resolve_import_target(self, module: str,
                               target: str) -> Optional[str]:
        """Qualname of an imported function/class, if in the project."""
        if target in self.files:
            return None                      # a module, not a symbol
        head, _, attr = target.rpartition(".")
        if head and head in self.files:
            if f"{head}:{attr}" in self.functions:
                return f"{head}:{attr}"
            if f"{head}:{attr}" in self.classes:
                return f"class:{head}:{attr}"
            # re-export through a package __init__: search by bare name
            return self._unique_by_name(attr)
        return None

    def _unique_by_name(self, name: str) -> Optional[str]:
        """Project-unique function (module-level or method) named *name*.

        Builtin container/str method names never match: the receiver is
        far more likely a plain dict/list than the one project class
        that happens to define the same verb.
        """
        if name in _BUILTIN_METHOD_NAMES:
            return None
        candidates = self._fn_by_bare_name.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _resolve_method(self, class_key: str,
                        method: str) -> Optional[str]:
        """Resolve *method* on *class_key*, walking base classes."""
        seen: Set[str] = set()
        queue: Deque[str] = deque([class_key])
        while queue:
            key = queue.popleft()
            if key in seen:
                continue
            seen.add(key)
            hit = self._method_index.get((key, method))
            if hit is not None:
                return hit
            cls = self.classes.get(key)
            if cls is None:
                continue
            summary = self.files.get(cls.module)
            for base in cls.bases:
                base_name = base.split(".")[-1]
                base_key = None
                if summary is not None and base in summary.imports:
                    target = summary.imports[base]
                    head, _, attr = target.rpartition(".")
                    if head in self.files and f"{head}:{attr}" in self.classes:
                        base_key = f"{head}:{attr}"
                if base_key is None and f"{cls.module}:{base_name}" \
                        in self.classes:
                    base_key = f"{cls.module}:{base_name}"
                if base_key is None:
                    keys = self._class_by_name.get(base_name, [])
                    if len(keys) == 1:
                        base_key = keys[0]
                if base_key is not None:
                    queue.append(base_key)
        return None

    def resolve_call(self, caller: FunctionSummary,
                     expr: str) -> Optional[str]:
        """Qualname of the function *expr* calls from *caller*, or None.

        Resolution order: ``self.m`` through the caller's class (and
        bases); bare names through module scope then imports; dotted
        names through import aliases; any remaining attribute call
        through the by-unique-name fallback (a method name defined by
        exactly one project class). Unresolvable calls return ``None``
        and contribute no edge.
        """
        module = caller.qualname.split(":", 1)[0]
        summary = self.files.get(module)
        parts = expr.split(".")
        if parts[0] == "self" and caller.cls is not None:
            if len(parts) == 2:
                hit = self._resolve_method(f"{module}:{caller.cls}",
                                           parts[1])
                if hit is not None:
                    return hit
            return self._unique_by_name(parts[-1]) \
                if len(parts) > 2 else None
        if len(parts) == 1:
            name = parts[0]
            if f"{module}:{name}" in self.functions:
                return f"{module}:{name}"
            if summary is not None and name in summary.imports:
                target = self._resolve_import_target(module,
                                                     summary.imports[name])
                if target is not None and not target.startswith("class:"):
                    return target
                if target is not None and target.startswith("class:"):
                    # constructor: resolve to its __init__ when indexed
                    key = target[len("class:"):]
                    return self._method_index.get((key, "__init__"))
            if f"{module}:{name}" in self.classes:
                return self._method_index.get((f"{module}:{name}",
                                               "__init__"))
            return None
        # dotted: alias.func / pkg.mod.func / ?.attr / obj.attr
        head, attr = parts[0], parts[-1]
        if head != "?" and summary is not None and head in summary.imports:
            target_module = summary.imports[head]
            if len(parts) == 2 and target_module in self.files:
                qual = f"{target_module}:{attr}"
                if qual in self.functions:
                    return qual
                if f"{target_module}:{attr}" in self.classes:
                    return self._method_index.get(
                        (f"{target_module}:{attr}", "__init__"))
        full_module = ".".join(parts[:-1])
        if full_module in self.files:
            qual = f"{full_module}:{attr}"
            if qual in self.functions:
                return qual
        return self._unique_by_name(attr)

    # -- call graph -------------------------------------------------------
    def _build_edges(self) -> None:
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            targets: List[str] = []
            for call in fn.calls:
                resolved = self.resolve_call(fn, call.expr)
                if resolved is not None and resolved not in targets:
                    targets.append(resolved)
            self._edges[qual] = targets

    def callees(self, qualname: str) -> List[str]:
        """Resolved direct callees of *qualname* (empty if unknown)."""
        return self._edges.get(qualname, [])

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from *roots* (roots included)."""
        seen: Set[str] = set()
        queue: Deque[str] = deque(roots)
        while queue:
            qual = queue.popleft()
            if qual in seen or qual not in self.functions:
                continue
            seen.add(qual)
            queue.extend(self._edges.get(qual, []))
        return seen

    def resolve_exprs(self, caller: FunctionSummary,
                      exprs: Iterable[str]) -> List[str]:
        """Deduplicated resolutions of *exprs*, unresolvables dropped."""
        out: List[str] = []
        for expr in exprs:
            resolved = self.resolve_call(caller, expr)
            if resolved is not None and resolved not in out:
                out.append(resolved)
        return out

    # -- protocol helpers -------------------------------------------------
    def resolved_sends(self) -> List[Tuple[FunctionSummary, SendSite,
                                           List[str], List[str]]]:
        """Every send site with kinds and keys resolved project-wide.

        Returns ``(function, site, kinds, keys)`` tuples; ``kinds`` is
        empty for a kindless send and ``["<dynamic>"]`` when the kind
        could not be resolved to constants.
        """
        out: List[Tuple[FunctionSummary, SendSite, List[str], List[str]]] = []
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            for site in fn.sends:
                keys = list(site.keys)
                kind_const = site.kind
                kind_param = site.kind_param
                dynamic = site.kind_dynamic
                if site.body_call is not None:
                    target = self.resolve_call(fn, site.body_call)
                    builder = self.functions.get(target) \
                        if target is not None else None
                    if builder is not None and \
                            builder.returns_msg_keys is not None:
                        keys = list(builder.returns_msg_keys)
                        kind_const = builder.returns_msg_kind
                        kind_param = builder.returns_msg_kind_param
                        if kind_param is not None:
                            kinds = self._kind_param_values(target or "",
                                                            kind_param)
                            out.append((fn, site, kinds, keys))
                            continue
                    else:
                        out.append((fn, site, ["<unknown>"], []))
                        continue
                if kind_param is not None:
                    kinds = self._kind_param_values(qual, kind_param)
                elif kind_const is not None:
                    kinds = [kind_const]
                elif dynamic:
                    kinds = ["<dynamic>"]
                else:
                    kinds = []
                out.append((fn, site, kinds, keys))
        return out

    def _kind_param_values(self, qualname: str, param: str) -> List[str]:
        """Constant values callers pass for *param* of *qualname*."""
        fn = self.functions.get(qualname)
        if fn is None:
            return ["<dynamic>"]
        values: List[str] = []
        if param in fn.param_str_defaults:
            values.append(fn.param_str_defaults[param])
        try:
            pos_index = fn.params.index(param)
        except ValueError:
            pos_index = -1
        if fn.params and fn.params[0] == "self" and pos_index > 0:
            pos_index -= 1
        explicit = False
        for caller_qual in sorted(self.functions):
            caller = self.functions[caller_qual]
            for call in caller.calls:
                if self.resolve_call(caller, call.expr) != qualname:
                    continue
                const = call.kw_consts.get(param)
                if const is None and 0 <= pos_index < len(call.pos_consts):
                    const = call.pos_consts[pos_index]
                    if const is None:
                        continue
                if const is not None:
                    explicit = True
                    if const not in values:
                        values.append(const)
        if not values:
            return ["<dynamic>"]
        if not explicit and param not in fn.param_str_defaults:
            return ["<dynamic>"]
        return values

    def dispatchers(self) -> List[Tuple[FunctionSummary, DispatchBranch]]:
        """Every kind-dispatch branch in the project, with its owner."""
        out: List[Tuple[FunctionSummary, DispatchBranch]] = []
        for qual in sorted(self.functions):
            fn = self.functions[qual]
            for branch in fn.dispatches:
                out.append((fn, branch))
        return out

    def resolve_toggle(self, caller: FunctionSummary,
                       ref: str) -> Optional[ToggleFlag]:
        """The :class:`ToggleFlag` a guard's test expression refers to."""
        module = caller.qualname.split(":", 1)[0]
        name = ref.split(".")[-1]
        if _is_toggle_name(name):
            return self.toggles.get(f"{module}:{name}")
        # getter call: resolve the function, then find the flag whose
        # getter it is.
        target = self.resolve_call(caller, ref)
        if target is None:
            return None
        for key in sorted(self.toggles):
            if self.toggles[key].getter == target:
                return self.toggles[key]
        return None
