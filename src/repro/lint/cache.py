"""Incremental lint cache: per-file findings + semantic summaries.

Re-linting a 170-file tree to check a one-file change re-runs every
per-file rule and re-extracts every semantic summary for no reason —
both are pure functions of the file's bytes. This cache keys each
file's artifacts by a content hash that also covers the linter's *own*
source (any edit to ``repro.lint`` invalidates everything, so a rule
change can never serve stale findings) and the summary schema version.

Only the per-file stage is cached; waiver matching, baseline
subtraction, and the whole-program rules always run live — waivers are
cheap, and project findings depend on *other* files by design.

Entries are self-contained JSON files under ``.lint_cache/`` (ignored
by git). A corrupt or unreadable entry is treated as a miss, never an
error: the cache can be deleted at any time.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from .core import Finding, Severity
from .graph import SCHEMA_VERSION, FileSummary

__all__ = ["LintCache", "lint_code_hash", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".lint_cache"

_code_hash: Optional[str] = None


def lint_code_hash() -> str:
    """Hash of every source file of the ``repro.lint`` package.

    Computed once per process; folding it into every cache key makes
    the cache self-invalidating across linter changes.
    """
    global _code_hash
    if _code_hash is not None:
        return _code_hash
    digest = hashlib.blake2b(digest_size=16)
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for dirpath, dirnames, filenames in os.walk(package_dir):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if not name.endswith(".py"):
                continue
            full = os.path.join(dirpath, name)
            digest.update(os.path.relpath(full, package_dir).encode())
            try:
                with open(full, "rb") as fh:
                    digest.update(fh.read())
            except OSError:
                digest.update(b"<unreadable>")
    _code_hash = digest.hexdigest()
    return _code_hash


def _finding_to_dict(finding: Finding) -> Dict[str, Any]:
    return {"rule": finding.rule, "severity": finding.severity.value,
            "path": finding.path, "line": finding.line,
            "col": finding.col, "message": finding.message}


def _finding_from_dict(raw: Dict[str, Any]) -> Finding:
    return Finding(rule=raw["rule"], severity=Severity(raw["severity"]),
                   path=raw["path"], line=raw["line"], col=raw["col"],
                   message=raw["message"])


class LintCache:
    """Content-addressed store of one entry per (path, source) pair."""

    def __init__(self, directory: str = DEFAULT_CACHE_DIR) -> None:
        self.directory = directory
        self.hits = 0
        self.misses = 0

    def _entry_path(self, path: str, source: str) -> str:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(lint_code_hash().encode())
        digest.update(str(SCHEMA_VERSION).encode())
        digest.update(path.encode())
        digest.update(b"\0")
        digest.update(source.encode("utf-8", "surrogatepass"))
        return os.path.join(self.directory, digest.hexdigest() + ".json")

    def load(self, path: str,
             source: str) -> Optional[Tuple[List[Finding],
                                            Optional[FileSummary]]]:
        """Cached ``(raw findings, summary)`` for *path*, or None."""
        entry = self._entry_path(path, source)
        try:
            with open(entry, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION:
            self.misses += 1
            return None
        try:
            findings = [_finding_from_dict(raw)
                        for raw in payload["findings"]]
            raw_summary = payload.get("summary")
            summary = FileSummary.from_dict(raw_summary) \
                if raw_summary is not None else None
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, summary

    def store(self, path: str, source: str, findings: List[Finding],
              summary: Optional[FileSummary]) -> None:
        """Persist one file's artifacts; I/O failures are ignored."""
        payload = {
            "schema": SCHEMA_VERSION,
            "path": path,
            "findings": [_finding_to_dict(f) for f in findings],
            "summary": summary.to_dict() if summary is not None else None,
        }
        entry = self._entry_path(path, source)
        tmp = entry + ".tmp"
        try:
            os.makedirs(self.directory, exist_ok=True)
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp, entry)
        except OSError:
            try:
                os.remove(tmp)
            except OSError:
                pass
