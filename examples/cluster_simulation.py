#!/usr/bin/env python
"""Capstone: a batch-scheduled cluster sharing one burst buffer.

A 32-node machine (exclusive node allocation, FCFS + backfill — the role
Slurm plays on the paper's testbed) runs a stream of jobs against a
2-server ThemisIO deployment: compute-heavy simulations with periodic
output bursts, a data-loading training job, and one I/O-hammering
benchmark job. The same stream is replayed twice — burst buffer under
FIFO, then under size-fair — and per-job turnarounds are compared.

The paper's claim at cluster scale: the I/O hammer barely suffers while
everyone else stops paying the interference tax.

Run:  python examples/cluster_simulation.py   (~1 min)
"""

from repro.batch import BatchScheduler
from repro.bb import Cluster, ClusterConfig, cluster_summary
from repro.harness.report import pct, table
from repro.units import MB
from repro.workloads import (ApplicationWorkload, AppProfile, IopsWriteRead,
                             JobSpec)

SIM_PROFILE = AppProfile(
    name="sim", nodes=8, steps=20, compute_per_step=0.05,
    io_every=5, io_bytes=160 * MB, io_request=4 * MB, io_op="write")
TRAIN_PROFILE = AppProfile(
    name="train", nodes=4, steps=25, compute_per_step=0.04,
    io_every=1, io_bytes=24 * MB, io_request=1 * MB, io_op="read",
    async_depth=2)


def run_stream(policy: str):
    cluster = Cluster(ClusterConfig(n_servers=2, policy=policy, seed=7))
    sched = BatchScheduler(cluster, n_compute_nodes=32)
    submissions = [
        (JobSpec(job_id=1, user="climate", nodes=8),
         ApplicationWorkload(SIM_PROFILE), 0.0, None),
        (JobSpec(job_id=2, user="ml", nodes=4),
         ApplicationWorkload(TRAIN_PROFILE), 0.2, None),
        # The I/O hammer: open-ended benchmark bounded by its walltime.
        (JobSpec(job_id=3, user="benchmarker", nodes=1),
         IopsWriteRead(file_size=4 * MB, streams_per_node=32), 0.4, 1.5),
        (JobSpec(job_id=4, user="climate", nodes=8),
         ApplicationWorkload(SIM_PROFILE), 0.6, None),
    ]
    for spec, workload, at, walltime in submissions:
        sched.submit(spec, workload, submit_time=at, walltime=walltime)
    sched.run(until=120.0)
    assert sched.all_done, "increase the horizon"
    return sched


def main() -> None:
    print("32 compute nodes, FCFS+backfill, 2 burst-buffer servers\n")
    fifo = run_stream("fifo")
    fair = run_stream("size-fair")

    rows = []
    for job_id in sorted(fifo.jobs):
        f = fifo.jobs[job_id]
        s = fair.jobs[job_id]
        delta = s.turnaround / f.turnaround - 1.0
        rows.append((f"job{job_id} ({f.spec.user}, {f.spec.nodes}n)",
                     f"{f.turnaround:.2f}s", f"{s.turnaround:.2f}s",
                     pct(delta)))
    print(table(("job", "FIFO turnaround", "size-fair turnaround",
                 "change"), rows))
    print(f"\nmakespan: FIFO {fifo.makespan():.2f}s -> "
          f"size-fair {fair.makespan():.2f}s")
    print(f"mean turnaround: FIFO {fifo.mean_turnaround():.2f}s -> "
          f"size-fair {fair.mean_turnaround():.2f}s")
    print("\nThe simulations and the training job shed their interference")
    print("tax; the 1-node I/O hammer pays only its fair (1-node) share.")
    print("\n" + cluster_summary(fair.cluster))


if __name__ == "__main__":
    main()
