#!/usr/bin/env python
"""Application interference study: the Fig. 1 / Fig. 13 scenario in miniature.

Runs the NAMD application model three ways — exclusive, against a
background I/O job under FIFO, and against the same background job under
ThemisIO's size-fair policy — and reports the slowdowns. The size-fair
slowdown stays near the node-count bound (1 background node against a
64-node job -> at most ~1.5%), while FIFO interference is an order of
magnitude worse.

Run:  python examples/interference_study.py   (~30 s)
"""

from repro.harness.experiments import _run_app
from repro.harness.report import pct
from repro.workloads import NAMD


def main() -> None:
    print(f"Application: {NAMD.name} ({NAMD.nodes} nodes, "
          f"{NAMD.steps} steps, trajectory burst every {NAMD.io_every})")
    print("Background: one node of 4 MB write/read cycles\n")

    baseline = _run_app(NAMD, "fifo", with_background=False, seed=0)
    print(f"exclusive access        : {baseline:6.2f} s")

    fifo = _run_app(NAMD, "fifo", with_background=True, seed=0)
    print(f"FIFO + background       : {fifo:6.2f} s   "
          f"({pct(fifo / baseline - 1)})")

    fair = _run_app(NAMD, "size-fair", with_background=True, seed=0)
    print(f"size-fair + background  : {fair:6.2f} s   "
          f"({pct(fair / baseline - 1)})")

    bound = 1.0 / (NAMD.nodes + 1)
    reduction = (fifo - fair) / (fifo - baseline) if fifo > baseline else 0.0
    print(f"\nmax slowdown bound for size-fair: {pct(bound)} "
          f"(background share of nodes)")
    print(f"size-fair removed {pct(reduction, signed=False)} of the "
          f"FIFO-induced slowdown")


if __name__ == "__main__":
    main()
