#!/usr/bin/env python
"""λ-delayed global fairness (§3.1, §5.6): the Fig. 5 scenario, measured.

Three size-fair jobs (16, 8, 8 nodes) write to files pinned to disjoint
servers, so each server initially sees only part of the job population
and allocates unfair tokens (job 1 gets 2/3 locally instead of its
global 1/2). Every λ the controllers all-gather their job status tables
and re-solve the placement-constrained token assignment; the example
prints job 1's observed share per interval for two λ values.

Run:  python examples/lambda_sync.py   (~20 s)
"""

from repro.harness import fig14_lambda


def main() -> None:
    lambdas = (0.010, 0.200)
    print("Fair split: job1 (16 nodes) = 50%, jobs 2 and 3 (8 nodes) = 25%")
    print("Files are pinned so servers start with disjoint local views.\n")

    out = fig14_lambda(lambdas=lambdas, seed=0)
    print(out.report())
    print()
    for lam, conv in out.convergence.items():
        status = ("did not converge" if conv is None
                  else f"globally fair from interval {conv}")
        print(f"lambda = {lam * 1000:4.0f} ms: {status}; "
              f"steady-state share variance {out.variance[lam]:.5f}")
    print("\nShorter intervals converge in more (shorter) intervals and "
          "show higher share variance — §5.6's observation.")


if __name__ == "__main__":
    main()
