#!/usr/bin/env python
"""MPI-IO collective buffering over the burst buffer (§2.1's library layer).

Four ranks write a rank-interleaved (strided) pattern — the access shape
two-phase I/O exists for. Independently, each rank issues many small
requests; collectively, the ranks shuffle their pieces to aggregators
which issue a few large contiguous writes. The example times both
against the same ThemisIO server and reports the request-count collapse.

Run:  python examples/collective_io.py
"""

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.mpiio import Communicator, MPIFile, VectorView
from repro.units import KiB

RANKS = 4
ROUNDS = 16
BLOCK = 128 * KiB


def build():
    # A realistic per-request overhead (RPC + FS stack) is what makes
    # many-small-requests expensive and collective buffering pay off.
    cluster = Cluster(ClusterConfig(
        n_servers=1, policy="job-fair",
        server=ServerConfig(op_latency=200e-6, n_workers=4)))
    cluster.fs.makedirs("/fs/mpi")
    job = JobInfo(job_id=1, user="mpi", size=RANKS)
    clients = [cluster.add_client(job, client_id=f"rank{r}")
               for r in range(RANKS)]
    return cluster, Communicator(clients)


def run(collective: bool):
    cluster, comm = build()
    mpifile = MPIFile(comm, "/fs/mpi/out", cb_nodes=2)
    view = VectorView(nranks=RANKS, blocklen=BLOCK)
    finished = {}

    def rank_proc(rank):
        yield from mpifile.open()
        pieces = view.pieces(rank, count=ROUNDS)
        if collective:
            yield from mpifile.write_at_all(rank, pieces)
        else:
            yield from mpifile.write_at(rank, pieces)
        finished[rank] = cluster.engine.now

    for rank in range(RANKS):
        cluster.engine.process(rank_proc(rank))
    cluster.run(until=10.0)
    elapsed = max(finished.values())
    requests = cluster.sampler.op_count(op="write")
    return elapsed, requests, mpifile


def main() -> None:
    print(f"{RANKS} ranks x {ROUNDS} interleaved blocks of {BLOCK // KiB} KiB\n")
    t_ind, req_ind, _ = run(collective=False)
    t_col, req_col, mpifile = run(collective=True)
    print(f"independent strided writes : {req_ind:3d} server requests, "
          f"{t_ind * 1000:.2f} ms")
    print(f"two-phase collective       : {req_col:3d} server requests, "
          f"{t_col * 1000:.2f} ms "
          f"({mpifile.shuffled_bytes // KiB} KiB shuffled between ranks)")
    print(f"\nrequest-count reduction: {req_ind / req_col:.0f}x; "
          f"wall-clock change: {t_ind / t_col:.2f}x")


if __name__ == "__main__":
    main()
