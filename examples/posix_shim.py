#!/usr/bin/env python
"""POSIX compatibility (§4.4): applications need no code changes.

Demonstrates the interception layer: Listing-1 functions (open/close/
read/write/lseek/opendir/readdir/closedir) are installed into an
interposition registry; calls on paths under the ThemisIO namespace
(``/fs``) are served by the burst-buffer file system, while other paths
pass through to the "local" file system — exactly how the override /
trampoline techniques route a real application's I/O.

Run:  python examples/posix_shim.py
"""

from repro.fs import ThemisFS
from repro.posix import (O_CREAT, O_RDONLY, O_RDWR, SEEK_SET,
                         InterposeRegistry, PosixShim, install_interception)
from repro.units import MiB


def main() -> None:
    # The burst buffer: three servers, files striped across all of them.
    burst_buffer = ThemisFS(["bb0", "bb1", "bb2"],
                            capacity_per_server=64 * MiB,
                            stripe_size=4096, default_stripe_count=3)
    burst_buffer.makedirs("/fs/output")
    # The node-local file system for non-intercepted paths.
    local = ThemisFS(["localdisk"], capacity_per_server=64 * MiB)
    local.makedirs("/tmp")

    shim = PosixShim(burst_buffer, namespace="/fs", passthrough=local)
    registry = InterposeRegistry()
    install_interception(registry, shim)
    print("intercepted functions:", ", ".join(registry.intercepted_functions()))

    # --- what an unmodified application would do -------------------------
    fd = registry.call("open", "/fs/output/result.dat", O_RDWR | O_CREAT)
    payload = b"checkpoint " * 1000
    written = registry.call("write", fd, payload)
    registry.call("lseek", fd, 0, SEEK_SET)
    back = registry.call("read", fd, written)
    assert back == payload, "round trip through the burst buffer failed"
    registry.call("close", fd)
    print(f"/fs path: wrote+read {written} bytes through the burst buffer")
    print("  striped over servers:",
          {k: v for k, v in burst_buffer.used_bytes().items() if v})

    # Non-namespace paths bypass the burst buffer entirely.
    fd = registry.call("open", "/tmp/notes.txt", O_RDWR | O_CREAT)
    registry.call("write", fd, b"local only")
    registry.call("close", fd)
    print("/tmp path: served by the local file system "
          f"(burst buffer untouched: {not burst_buffer.exists('/tmp/notes.txt')})")

    # Directory listing through the shim.
    stream = registry.call("opendir", "/fs/output")
    entries = []
    while True:
        name = registry.call("readdir", stream)
        if name is None:
            break
        entries.append(name)
    registry.call("closedir", stream)
    print("readdir /fs/output:", entries)

    stats = registry.stats("open")
    print(f"open() interceptions: {stats.intercepted}")


if __name__ == "__main__":
    main()
