#!/usr/bin/env python
"""Quickstart: share one burst-buffer server between two competing jobs.

Builds a single-server ThemisIO deployment with the ``size-fair``
policy, runs a 4-node job against a 1-node job (the Fig. 8(a) scenario),
and prints each job's median throughput plus the achieved sharing ratio.

Run:  python examples/quickstart.py
"""

from repro.harness import fig08_primitive, sparkline
from repro.harness.report import ratio
from repro.units import fmt_bw


def main() -> None:
    print("ThemisIO quickstart: size-fair, 4-node vs 1-node job")
    print("(job 1 runs the full window; job 2 joins a quarter in)\n")

    out = fig08_primitive("size-fair", scale=0.1, seed=0)

    print(out.report())
    print()
    # The Fig. 8(a) time-series shape, as terminal sparklines.
    device = 22e9
    for job_id in (1, 2):
        _, rates = out.result.series(job_id)
        print(f"job {job_id} throughput |{sparkline(rates, ceiling=device)}|")
    print(" " * 18 + "^ job 2 joins, job 1 drops to its 4/5 share")
    print()
    print(f"job 1 unopposed median : {fmt_bw(out.solo_median)}")
    print(f"sharing ratio          : {ratio(out.ratio)}  "
          f"(node-count ratio is 4.00x)")
    print()
    print("Try policy='job-fair' above: the same jobs then split evenly.")


if __name__ == "__main__":
    main()
