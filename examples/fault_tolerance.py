#!/usr/bin/env python
"""Fault tolerance (§7 future work): log-structured data + journaled namespace.

The paper's conclusion names "log-structure byte-addressable file system
designs and persistent data structure strategy to enable fault
tolerance" as future work. This example exercises that design: a
:class:`~repro.fs.JournaledFS` over the log-structured chunk backend
writes real data, crashes (losing every volatile index and namespace
table), and recovers by replaying the namespace journal and scanning the
log segments — byte-for-byte intact.

Run:  python examples/fault_tolerance.py
"""

from repro.fs import JournaledFS
from repro.units import KiB, MiB


def main() -> None:
    fs = JournaledFS(["bb0", "bb1", "bb2"], capacity_per_server=64 * MiB,
                     stripe_size=16 * KiB, default_stripe_count=3,
                     storage_backend="log")
    fs.makedirs("/fs/checkpoints")

    # A few application checkpoints, one overwritten, one deleted.
    blobs = {}
    for step in (100, 200, 300):
        path = f"/fs/checkpoints/step-{step}.ckpt"
        fs.create(path)
        blobs[path] = bytes([step % 256]) * (96 * KiB)
        fs.write(path, 0, blobs[path])
    fs.write("/fs/checkpoints/step-100.ckpt", 0, b"v2" * (8 * KiB))
    blobs["/fs/checkpoints/step-100.ckpt"] = (
        b"v2" * (8 * KiB) + blobs["/fs/checkpoints/step-100.ckpt"][16 * KiB:])
    fs.unlink("/fs/checkpoints/step-200.ckpt")
    del blobs["/fs/checkpoints/step-200.ckpt"]
    fs.journal.take_checkpoint(fs)          # compact the journal
    fs.create("/fs/checkpoints/step-400.ckpt")
    blobs["/fs/checkpoints/step-400.ckpt"] = b"tail-write" * 1000
    fs.write("/fs/checkpoints/step-400.ckpt", 0,
             blobs["/fs/checkpoints/step-400.ckpt"])

    print("before crash:", fs.readdir("/fs/checkpoints"))
    print(f"journal: checkpoint of {len(fs.journal.checkpoint)} inodes "
          f"+ {len(fs.journal.records)} tail records")

    fs.crash()
    print("\n*** crash: namespace tables and chunk indexes lost ***")
    print("exists after crash:", fs.exists("/fs/checkpoints/step-300.ckpt"))

    stats = fs.recover()
    print(f"\nrecovered: {stats['applied']} namespace entries replayed")
    for server, report in stats["scans"].items():
        print(f"  {server}: scanned {report.records_scanned} log records "
              f"-> {report.live_keys} live chunks")

    print("after recovery:", fs.readdir("/fs/checkpoints"))
    for path, expected in blobs.items():
        got = fs.read(path, 0, len(expected))
        assert got == expected, f"corruption in {path}"
    print(f"verified {len(blobs)} files byte-for-byte intact; "
          "deleted checkpoint stayed deleted")


if __name__ == "__main__":
    main()
