#!/usr/bin/env python
"""Composite sharing policies: the Fig. 9 / Figs. 10-11 scenarios.

Shows how ThemisIO's single policy parameter composes sharing entities:
``user-then-size-fair`` splits I/O evenly across users and then
proportionally to node count within each user; the three-tier
``group-user-size-fair`` adds a group level on top. The second run
prints the Fig. 11-style hierarchy tree with each entity's achieved
percentage of the total throughput.

Run:  python examples/policy_composition.py
"""

from collections import defaultdict

from repro.harness import fig09_user_then_size, fig10_group_user_size
from repro.units import fmt_bw

SCALE = 0.1


def print_tree(out) -> None:
    """Render the Fig. 11 tree: group -> user -> job percentages."""
    total = out.total
    by_group = defaultdict(lambda: defaultdict(list))
    spec_of = {run.spec.job_id: run.spec for run in out.result.config.jobs}
    for job_id, rate in sorted(out.job_medians.items()):
        spec = spec_of[job_id]
        by_group[spec.group][spec.user].append((job_id, spec.nodes, rate))
    print(f"all jobs: {fmt_bw(total)} (100%)")
    for group in sorted(by_group):
        g_rate = out.group_totals[group]
        print(f"  {group}: {fmt_bw(g_rate)} ({g_rate / total * 100:.0f}%)")
        for user in sorted(by_group[group]):
            u_rate = out.user_totals[user]
            print(f"    {user}: {fmt_bw(u_rate)} "
                  f"({u_rate / total * 100:.0f}%)")
            for job_id, nodes, rate in by_group[group][user]:
                print(f"      job{job_id} ({nodes} nodes): {fmt_bw(rate)} "
                      f"({rate / total * 100:.0f}%)")


def main() -> None:
    print("=== user-then-size-fair (Fig. 9) ===")
    print("Two users; user 1 runs 1- and 2-node jobs, user 2 runs 4- and")
    print("6-node jobs. Users split evenly; jobs split 1:2 and 4:6.\n")
    out9 = fig09_user_then_size(scale=SCALE, seed=0)
    print(out9.report())

    print("\n=== group-user-size-fair (Figs. 10-11) ===")
    print("Two groups, four users, eight jobs; user 2's three jobs have")
    print("node counts 2:3:2.\n")
    out10 = fig10_group_user_size(scale=SCALE, seed=0)
    print_tree(out10)


if __name__ == "__main__":
    main()
