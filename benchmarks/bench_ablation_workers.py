"""Ablation — I/O worker count (§4.1: "There can be multiple workers
for higher I/O throughput").

Workers share the device bandwidth, so for large transfers the count is
throughput-neutral; what workers buy is *request-level concurrency*: at
small request sizes the fixed per-op latency serialises on a single
worker and the device starves. The sweep shows throughput climbing with
worker count until the device (not the workers) is the bottleneck.
"""

from repro.harness import JobRun, run_sharing_experiment
from repro.bb.server import ServerConfig
from repro.units import GB, KiB, MB
from repro.workloads import JobSpec, WriteReadCycle


def _throughput(n_workers: int) -> float:
    server = ServerConfig(bandwidth=22 * GB, n_workers=n_workers,
                          op_latency=50e-6)
    jobs = [JobRun(
        spec=JobSpec(job_id=1, user="u", nodes=2),
        workload=WriteReadCycle(file_size=2 * MB, request_size=256 * KiB,
                                streams_per_node=16),
        start=0.0, stop=1.0)]
    result = run_sharing_experiment("job-fair", jobs, scale=1 / 60,
                                    seed=0, server=server,
                                    sample_interval=0.1)
    return result.window_throughput(0.2, 1.0)


def test_worker_count_sweep(once):
    counts = (1, 2, 4, 8)

    def sweep():
        return {n: _throughput(n) for n in counts}

    rates = once(sweep)
    print("\nworkers -> aggregate throughput")
    for n in counts:
        print(f"  {n:2d}: {rates[n] / 1e9:6.2f} GB/s")
    # More workers help until the device saturates.
    assert rates[2] > rates[1] * 1.3
    assert rates[8] > rates[1] * 2.0
    # Monotone (within noise).
    assert rates[4] >= rates[2] * 0.9
    assert rates[8] >= rates[4] * 0.9
