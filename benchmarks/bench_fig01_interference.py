"""Fig. 1 — the motivating interference measurement.

Paper rows: with a background I/O benchmark job sharing the burst
buffer under FIFO, the five applications run 3-173% longer than with
exclusive access (NAMD and WRF worst among the synchronous apps,
ResNet-50's async pipeline collapsing hardest).
"""

from repro.harness import fig01_interference

APPS = ("namd", "wrf", "specfem3d", "resnet50", "bert")


def test_fig01_interference(once):
    out = once(fig01_interference, apps=APPS, seed=0)
    print("\n" + out.report())
    slowdowns = {app: out.slowdown(app, "fifo") for app in APPS}
    print("FIFO slowdowns:",
          {k: f"{v * 100:+.1f}%" for k, v in slowdowns.items()},
          "(paper range: +3% to +173%)")
    # Every app is slowed by interference.
    assert all(s > 0.0 for s in slowdowns.values()), slowdowns
    # The span covers both compute-bound (small) and I/O-bound (large).
    assert min(slowdowns.values()) < 0.10
    assert max(slowdowns.values()) > 0.50
    # The async-I/O app (ResNet) is among the hardest hit.
    assert slowdowns["resnet50"] > 1.0
