"""Ablation — extent vs log-structured storage (§7 future work).

Microbenchmarks of the two chunk backends: in-place extent writes vs
append-with-versioning log writes (which pay read-modify-write on
partial updates and garbage collection under overwrite churn), plus the
cost of a post-crash recovery scan. Quantifies the price of the fault
tolerance the log design buys.
"""

import pytest

from repro.fs import ExtentBackend, LogBackend
from repro.units import KiB

CHUNK = 64 * KiB
DATA = bytes(range(256)) * (CHUNK // 256)


@pytest.mark.parametrize("kind", ["extent", "log"])
def test_full_chunk_write(benchmark, kind):
    backend = (ExtentBackend(1 << 28) if kind == "extent"
               else LogBackend(1 << 28, segment_size=1 << 22))
    state = {"i": 0}

    def write():
        state["i"] += 1
        backend.write_chunk(1, state["i"] % 512, 0, DATA, CHUNK)

    benchmark(write)


@pytest.mark.parametrize("kind", ["extent", "log"])
def test_partial_overwrite_churn(benchmark, kind):
    """Small in-chunk updates: the log pays read-modify-write + GC."""
    backend = (ExtentBackend(1 << 26) if kind == "extent"
               else LogBackend(1 << 26, segment_size=1 << 21))
    backend.write_chunk(1, 0, 0, DATA, CHUNK)
    patch = b"p" * 512
    state = {"o": 0}

    def overwrite():
        state["o"] = (state["o"] + 512) % (CHUNK - 512)
        backend.write_chunk(1, 0, state["o"], patch, CHUNK)

    benchmark(overwrite)


@pytest.mark.parametrize("kind", ["extent", "log"])
def test_chunk_read(benchmark, kind):
    backend = (ExtentBackend(1 << 26) if kind == "extent"
               else LogBackend(1 << 26, segment_size=1 << 21))
    for chunk in range(64):
        backend.write_chunk(1, chunk, 0, DATA, CHUNK)
    state = {"i": 0}

    def read():
        state["i"] += 1
        return backend.read_chunk(1, state["i"] % 64, 0, CHUNK)

    benchmark(read)


def test_recovery_scan(benchmark):
    """Index rebuild cost after a crash, per 1k live records."""
    backend = LogBackend(1 << 28, segment_size=1 << 22)
    for i in range(1000):
        backend.write_chunk(i % 100, i // 100, 0, DATA, CHUNK)

    def crash_recover():
        backend.crash()
        return backend.recover()

    report = benchmark(crash_recover)
    assert report.live_keys == 1000
