"""Microbenchmarks of the file-system substrate's hot paths."""

from repro.fs import ConsistentHashRing, NVMeRegion, StripeSpec, ThemisFS, map_range
from repro.units import KiB, MiB


def test_consistent_hash_lookup(benchmark):
    ring = ConsistentHashRing([f"bb{i}" for i in range(16)], vnodes=64)
    paths = [f"/fs/data/file-{i}" for i in range(256)]
    state = {"i": 0}

    def lookup():
        state["i"] = (state["i"] + 1) % len(paths)
        return ring.lookup(paths[state["i"]])

    benchmark(lookup)


def test_stripe_map_range(benchmark):
    spec = StripeSpec(stripe_size=MiB, servers=tuple(f"bb{i}" for i in range(8)))
    benchmark(map_range, spec, 3 * MiB + 17, 64 * MiB)


def test_extent_alloc_free(benchmark):
    region = NVMeRegion(1 << 30)

    def cycle():
        extents = [region.alloc(64 * KiB) for _ in range(32)]
        for extent in extents:
            region.free(extent)

    benchmark(cycle)


def test_fs_metadata_create_stat_unlink(benchmark):
    fs = ThemisFS([f"bb{i}" for i in range(4)], capacity_per_server=1 << 30)
    fs.makedirs("/fs/bench")
    state = {"i": 0}

    def cycle():
        path = f"/fs/bench/f{state['i']}"
        state["i"] += 1
        fs.create(path)
        fs.stat(path)
        fs.unlink(path)

    benchmark(cycle)


def test_fs_accounting_write_read(benchmark):
    fs = ThemisFS([f"bb{i}" for i in range(4)], capacity_per_server=1 << 30,
                  default_stripe_count=4)
    fs.makedirs("/fs/bench")
    fs.create("/fs/bench/data")

    def cycle():
        fs.write_accounting("/fs/bench/data", 0, 8 * MiB)
        fs.read_accounting("/fs/bench/data", 0, 8 * MiB)

    benchmark(cycle)
