"""MPI-IO layer (§2.1) — two-phase collective buffering vs independent
strided I/O.

With a realistic per-request overhead, N ranks writing a
rank-interleaved pattern independently issue N*rounds small requests;
collective buffering coalesces them into ``cb_nodes`` large contiguous
requests at the cost of a fabric shuffle. Expect a large request-count
reduction and a wall-clock win.
"""

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo
from repro.mpiio import Communicator, MPIFile, VectorView
from repro.units import KiB

RANKS = 8
ROUNDS = 32
BLOCK = 64 * KiB


def _run(collective: bool):
    cluster = Cluster(ClusterConfig(
        n_servers=1, policy="job-fair",
        server=ServerConfig(op_latency=200e-6, n_workers=4)))
    cluster.fs.makedirs("/fs/mpi")
    job = JobInfo(job_id=1, user="mpi", size=RANKS)
    comm = Communicator([cluster.add_client(job, client_id=f"r{r}")
                         for r in range(RANKS)])
    mpifile = MPIFile(comm, "/fs/mpi/out", cb_nodes=2)
    view = VectorView(nranks=RANKS, blocklen=BLOCK)
    finished = {}

    def rank_proc(rank):
        yield from mpifile.open()
        pieces = view.pieces(rank, count=ROUNDS)
        if collective:
            yield from mpifile.write_at_all(rank, pieces)
        else:
            yield from mpifile.write_at(rank, pieces)
        finished[rank] = cluster.engine.now

    for rank in range(RANKS):
        cluster.engine.process(rank_proc(rank))
    cluster.run(until=30.0)
    return max(finished.values()), cluster.sampler.op_count(op="write")


def test_collective_buffering(once):
    def run_both():
        return _run(False), _run(True)

    (t_ind, req_ind), (t_col, req_col) = once(run_both)
    print(f"\nindependent: {req_ind} requests in {t_ind * 1000:.2f} ms")
    print(f"collective : {req_col} requests in {t_col * 1000:.2f} ms "
          f"({t_ind / t_col:.2f}x faster, {req_ind / req_col:.0f}x fewer "
          f"requests)")
    assert req_ind == RANKS * ROUNDS
    assert req_col <= 4
    assert t_col < t_ind  # collective wins under per-request overhead
