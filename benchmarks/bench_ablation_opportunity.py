"""Ablation — opportunity fairness (DESIGN.md §4.5).

ThemisIO enforces fairness only when demand exceeds capacity, by
renormalising token segments over backlogged jobs; a *mandatory*
assignment (draws over the full segment map, idle segments wasted)
models prior static-allocation systems. With an asymmetric load — one
job busy, one mostly idle — the mandatory variant wastes the idle job's
cycles and loses throughput; opportunity fairness keeps the device busy.
"""

from repro.harness import JobRun, run_sharing_experiment
from repro.units import MB
from repro.workloads import JobSpec, WriteReadCycle


def _run(opportunity_fair: bool):
    # Job 1 saturates; job 2 sends a trickle (2 low-rate streams).
    jobs = [
        JobRun(spec=JobSpec(job_id=1, user="busy", nodes=1),
               workload=WriteReadCycle(file_size=10 * MB,
                                       streams_per_node=16),
               start=0.0, stop=3.0),
        JobRun(spec=JobSpec(job_id=2, user="idle", nodes=1),
               workload=WriteReadCycle(file_size=1 * MB,
                                       streams_per_node=1),
               start=0.0, stop=3.0),
    ]
    result = run_sharing_experiment(
        "job-fair", jobs, scale=0.05, seed=0,
        opportunity_fair=opportunity_fair)
    return result.window_throughput(0.5, 3.0)


def test_opportunity_fairness_reclaims_idle_cycles(once):
    def run_both():
        return _run(True), _run(False)

    with_of, without_of = once(run_both)
    print(f"\nopportunity fairness ON : {with_of / 1e9:6.2f} GB/s")
    print(f"opportunity fairness OFF: {without_of / 1e9:6.2f} GB/s "
          f"(mandatory assignment wastes the idle job's segment)")
    # Mandatory assignment loses a double-digit fraction of the device
    # (wasted draws retry after a blocked-cycle delay, bounding the loss).
    assert with_of > without_of * 1.10
    assert with_of > 18e9
