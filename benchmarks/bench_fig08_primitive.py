"""Fig. 8 — primitive policies on a single ThemisIO server.

Paper rows: (a) size-fair gives the 4-node job ~3.96x the 1-node job's
throughput (17.4 vs 4.4 GB/s; 21.8 GB/s unopposed); (b) job-fair splits
the same pair nearly equally (~10.6 GB/s each); (c) user-fair gives
user A (two 2-node jobs) and user B (one 1-node job) equal totals
(10.85 vs 10.80 GB/s).
"""

import pytest

from repro.harness import fig08_primitive, fig08c_user_fair

SCALE = 0.1
SEED = 0


def test_fig08a_size_fair(once):
    out = once(fig08_primitive, "size-fair", scale=SCALE, seed=SEED)
    print("\n" + out.report())
    print(f"throughput ratio: {out.ratio:.2f}x (paper: 3.96x)")
    assert 3.0 < out.ratio < 5.5
    assert out.solo_median > 18e9           # ~22 GB/s device limit
    assert out.peak_throughput > 18e9       # sharing keeps the device busy


def test_fig08b_job_fair(once):
    out = once(fig08_primitive, "job-fair", scale=SCALE, seed=SEED)
    print("\n" + out.report())
    print(f"throughput ratio: {out.ratio:.2f}x (paper: ~1.0x)")
    assert 0.75 < out.ratio < 1.35
    assert out.shared_medians[2] > 0.35 * out.peak_throughput


def test_fig08c_user_fair(once):
    out = once(fig08c_user_fair, scale=SCALE, seed=SEED)
    print("\n" + out.report())
    a, b = out.user_totals["userA"], out.user_totals["userB"]
    print(f"user totals: A={a / 1e9:.2f} GB/s, B={b / 1e9:.2f} GB/s "
          f"(paper: 10.85 vs 10.80)")
    assert a / b == pytest.approx(1.0, abs=0.3)
    # User A's two equal jobs split A's half evenly.
    assert out.job_medians[1] / out.job_medians[2] == pytest.approx(1.0,
                                                                    abs=0.4)
