"""Fig. 12 — ThemisIO vs the GIFT and TBF sharing algorithms.

Paper rows: ThemisIO sustains 19.8 GB/s peak, 13.5% / 13.7% higher than
GIFT / TBF; job 2's shared throughput 10.2 GB/s is 7.9% / 14.7% higher;
job 2's stddev 504 MB/s vs GIFT 626 and TBF 845.

Our reproduction: ThemisIO's peak and job-2 throughput lead both
comparators (TBF trails on peak via its classful rate ceilings, GIFT
via demand-forecast throttling); GIFT shows the worst variance. One
deviation, recorded in EXPERIMENTS.md: our byte-granular TBF is
*smoother* than ThemisIO, unlike the paper's RPC-granular Lustre NRS.
"""

from repro.harness import fig12_baselines


def test_fig12_baselines(once):
    out = once(fig12_baselines, scale=0.1, seed=0)
    print("\n" + out.report())
    adv = out.themis_advantage()
    print("ThemisIO peak advantage:",
          {k: f"{v * 100:+.1f}%" for k, v in adv.items()},
          "(paper: gift +13.5%, tbf +13.7%)")
    latencies = {name: r.time_to_fair_share(2)
                 for name, r in out.rows.items()}
    print("latency to fair-sharing (job 2):",
          {k: (f"{v:.2f}s" if v is not None else "never")
           for k, v in latencies.items()})
    # ThemisIO reallocates tokens immediately; GIFT budgets lag by mu.
    assert latencies["themis"] is not None
    if latencies["gift"] is not None:
        assert latencies["themis"] <= latencies["gift"] + 1e-9
    themis = out.rows["themis"]
    gift = out.rows["gift"]
    tbf = out.rows["tbf"]
    # Peak throughput: ThemisIO >= GIFT, strictly above TBF.
    assert themis.solo_median >= gift.solo_median * 0.98
    assert adv["tbf"] > 0.08
    # Job 2 during sharing: ThemisIO highest.
    assert themis.shared_medians[2] >= gift.shared_medians[2] * 0.98
    assert themis.shared_medians[2] >= tbf.shared_medians[2] * 0.98
    # Variation: ThemisIO more stable than GIFT.
    assert themis.shared_stddev[2] < gift.shared_stddev[2]
    # Everyone keeps the device busy while sharing.
    assert themis.peak_throughput > 18e9
