"""Fig. 14 — λ-delayed global fairness.

Paper rows: with files pinned to disjoint servers, ThemisIO reaches
global fairness by the second interval for λ ∈ {50, 200, 500} ms and in
five intervals at λ = 10 ms (below the ~50 ms server-processing
boundary); shorter intervals produce higher variance in the allocated
shares.
"""

from repro.harness import fig14_lambda

LAMBDAS = (0.010, 0.050, 0.200, 0.500)


def test_fig14_lambda(once):
    out = once(fig14_lambda, lambdas=LAMBDAS, seed=0)
    print("\n" + out.report())
    # Every interval length eventually reaches global fairness.
    assert all(conv is not None for conv in out.convergence.values()), \
        out.convergence
    # λ >= 50 ms converges within a couple of intervals.
    for lam in (0.050, 0.200, 0.500):
        assert out.convergence[lam] <= 2, (lam, out.convergence[lam])
    # λ = 10 ms needs strictly more intervals (processing-bound).
    assert out.convergence[0.010] > out.convergence[0.050]
    # Shorter λ -> higher share variance: clearly so at the short end,
    # monotone within the sampling-noise floor across the sweep.
    variances = [out.variance[lam] for lam in LAMBDAS]
    assert variances[0] > 3 * variances[-1]
    for earlier, later in zip(variances, variances[1:]):
        assert later <= earlier + 5e-5, variances
