"""Fig. 7 — aggregate throughput scaling with server count.

Paper rows: 11.7 GB/s with one server (unidirectional), 82% scaling
efficiency at 8 servers, 68% at 128, FIFO ≈ job-fair for both writes
and reads. We sweep 1-8 servers (the full 128-node sweep is the same
code; pass a larger tuple when you have the minutes to spare).
"""

from repro.harness import fig07_scaling
from repro.metrics import scaling_efficiency

COUNTS = (1, 2, 4, 8)


def test_fig07_scaling(once):
    out = once(fig07_scaling, server_counts=COUNTS, duration=1.5)
    print("\n" + out.report())
    for key, series in out.rows.items():
        eff = scaling_efficiency(series, list(COUNTS))
        # Near-linear scaling that degrades gently with node count.
        assert eff[-1] > 0.6, (key, eff)
        assert all(e < 1.25 for e in eff), (key, eff)
        # Throughput grows monotonically with servers.
        assert all(a < b for a, b in zip(series, series[1:])), (key, series)
    # FIFO and job-fair are equivalent for uncontended scaling runs.
    for mode in ("write", "read"):
        fifo = out.rows[f"fifo-{mode}"][-1]
        fair = out.rows[f"job-fair-{mode}"][-1]
        assert abs(fifo - fair) / fifo < 0.15
