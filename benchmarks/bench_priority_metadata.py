"""Two §2.2 scenarios the paper motivates but does not plot:

- **priority-fair** (§2.2.2: "assigning more I/O resources to
  prioritized jobs is fair, for example, during the hurricane season"):
  two otherwise identical jobs with 3:1 priorities must split I/O 3:1.

- **metadata storms** (§2.2.1: "the I/O workload of a job can be heavy
  in metadata access, which eventually saturates the metadata server"):
  an ``iops_stat`` storm against a victim job's metadata ops — FIFO
  lets the storm bury the victim; job-fair splits the metadata service
  cycles evenly.
"""

import pytest

from repro.harness import JobRun, run_sharing_experiment
from repro.units import MB
from repro.workloads import IopsStat, JobSpec, MdtestWorkload, WriteReadCycle


def test_priority_fair_three_to_one(once):
    jobs = [
        JobRun(spec=JobSpec(job_id=1, user="urgent", nodes=1, priority=3.0),
               workload=WriteReadCycle(file_size=10 * MB,
                                       streams_per_node=16),
               start=0.0, stop=3.0),
        JobRun(spec=JobSpec(job_id=2, user="routine", nodes=1, priority=1.0),
               workload=WriteReadCycle(file_size=10 * MB,
                                       streams_per_node=16),
               start=0.0, stop=3.0),
    ]
    result = once(run_sharing_experiment, "priority-fair", jobs,
                  scale=0.05, seed=0)
    r1 = result.window_throughput(0.5, 3.0, 1)
    r2 = result.window_throughput(0.5, 3.0, 2)
    print(f"\npriority-fair 3:1 -> measured {r1 / r2:.2f}:1 "
          f"({r1 / 1e9:.1f} vs {r2 / 1e9:.1f} GB/s)")
    assert r1 / r2 == pytest.approx(3.0, rel=0.3)


def _metadata_contention(policy: str):
    jobs = [
        # The storm: random stat() calls at full tilt.
        JobRun(spec=JobSpec(job_id=1, user="storm", nodes=1),
               workload=IopsStat(name_space=10_000, streams_per_node=32),
               start=0.0, stop=1.0),
        # The victim: a modest create/stat/unlink pipeline.
        JobRun(spec=JobSpec(job_id=2, user="victim", nodes=1),
               workload=MdtestWorkload(files_per_iteration=8,
                                       streams_per_node=4),
               start=0.0, stop=1.0),
    ]
    result = run_sharing_experiment(policy, jobs, scale=1.0 / 60.0, seed=0,
                                    sample_interval=0.1)
    return (result.sampler.op_count(job_id=1),
            result.sampler.op_count(job_id=2))


def test_metadata_storm_fair_sharing(once):
    def run_both():
        return _metadata_contention("fifo"), _metadata_contention("job-fair")

    (fifo_storm, fifo_victim), (fair_storm, fair_victim) = once(run_both)
    print(f"\nmetadata ops served  FIFO: storm={fifo_storm} "
          f"victim={fifo_victim} (victim share "
          f"{fifo_victim / (fifo_storm + fifo_victim):.1%})")
    print(f"metadata ops served  job-fair: storm={fair_storm} "
          f"victim={fair_victim} (victim share "
          f"{fair_victim / (fair_storm + fair_victim):.1%})")
    # Under FIFO the storm's 32 streams bury the victim's 4; job-fair
    # must lift both the victim's served ops and its share of cycles
    # (it stops below 50% only because its closed-loop concurrency is
    # its own limit — opportunity fairness hands the rest to the storm).
    fifo_share = fifo_victim / (fifo_storm + fifo_victim)
    fair_share = fair_victim / (fair_storm + fair_victim)
    assert fair_share > 1.5 * fifo_share
    assert fair_victim > 1.3 * fifo_victim
