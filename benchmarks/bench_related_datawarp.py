"""§6 related work — DataWarp provisioning policies vs ThemisIO sharing.

The paper argues production burst-buffer provisioning is "resource
underutilization prone": DataWarp's *interference* policy isolates jobs
on dedicated servers (fair, but idle capacity cannot move), while the
*bandwidth* policy shares servers under FIFO (fast, but small jobs are
buried). ThemisIO's pitch is both at once: shared servers with
statistical-token fairness.

Measured shape (4 servers, 2 heavy + 2 light jobs): isolation loses
~40% of aggregate throughput; FIFO sharing recovers it but starves the
light jobs; size-fair sharing keeps the aggregate at the FIFO level
while giving light jobs several times their FIFO throughput.
"""

from repro.harness.experiments import related_datawarp


def test_related_datawarp(once):
    out = once(related_datawarp, seed=0, duration=1.5)
    print("\n" + out.report())
    heavy = (1, 2)
    light = (3, 4)
    # Sharing (either discipline) recovers the capacity isolation wastes.
    assert out.totals["themis"] > 1.4 * out.totals["isolated"]
    assert out.totals["themis"] > 0.9 * out.totals["fifo-shared"]
    # FIFO buries the light jobs; ThemisIO lifts them severalfold.
    for j in light:
        assert out.per_job["themis"][j] > 2.5 * out.per_job["fifo-shared"][j]
    # Heavy jobs still get the lion's share under size-fair.
    for j in heavy:
        assert out.per_job["themis"][j] > 5 * out.per_job["themis"][light[0]]
    # Per-entitled-node fairness: ThemisIO well above FIFO sharing.
    assert out.jain["themis"] > out.jain["fifo-shared"] + 0.15
