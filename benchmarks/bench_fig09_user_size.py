"""Fig. 9 — the user-then-size-fair composite policy.

Paper rows: user 1's jobs get 3.4 + 6.7 GB/s (node ratio 1:2), user 2's
get 3.9 + 6.0 GB/s (node ratio 4:6 = 2:3); users total 10.1 vs 9.9
GB/s; aggregate ~20 GB/s (slightly under the 21.7 GB/s ceiling due to
startup).
"""

import pytest

from repro.harness import fig09_user_then_size


def test_fig09_user_then_size(once):
    out = once(fig09_user_then_size, scale=0.1, seed=0)
    print("\n" + out.report())
    u1, u2 = out.user_totals["user1"], out.user_totals["user2"]
    print(f"user totals: {u1 / 1e9:.2f} vs {u2 / 1e9:.2f} GB/s "
          f"(paper: 10.1 vs 9.9)")
    # First tier: users split evenly.
    assert u1 / u2 == pytest.approx(1.0, abs=0.3)
    # Second tier: jobs proportional to node count within each user.
    assert out.job_medians[2] / out.job_medians[1] == pytest.approx(2.0,
                                                                    rel=0.35)
    assert out.job_medians[4] / out.job_medians[3] == pytest.approx(1.5,
                                                                    rel=0.35)
    # Aggregate close to (a touch under) the device ceiling.
    assert out.total > 17e9
