"""Shared benchmark helpers.

Each figure benchmark runs its experiment exactly once (these are
minutes-of-simulated-time system runs, not microseconds-scale kernels)
and prints the paper-style rows; run with ``-s`` to see them. Shape
assertions guard the reproduction claims.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable once under pytest-benchmark and return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
