"""Microbenchmarks of the hot control-path kernels.

These are genuine pytest-benchmark loops (many iterations): the token
draw, the Eq. 1 matrix chain, scheduler enqueue/dequeue, and the
placement-constrained assignment. They bound the per-request overhead
the arbitration layer adds.
"""

from dataclasses import dataclass

import numpy as np

from repro.core import (JobInfo, Policy, StatisticalTokenScheduler,
                        TokenAssignment, placement_shares)


@dataclass
class Req:
    job_id: int
    cost: float = 1.0


def jobs(n, users=4, groups=2):
    return [JobInfo(job_id=i, user=f"u{i % users}", group=f"g{i % groups}",
                    size=(i % 8) + 1) for i in range(n)]


def test_token_draw(benchmark):
    assignment = TokenAssignment({i: float(i + 1) for i in range(64)})
    rng = np.random.default_rng(0)
    us = rng.random(10000)
    state = {"i": 0}

    def draw():
        state["i"] = (state["i"] + 1) % len(us)
        return assignment.draw(float(us[state["i"]]))

    benchmark(draw)


def test_policy_shares_primitive(benchmark):
    policy = Policy.parse("size-fair")
    population = jobs(64)
    benchmark(policy.shares, population)


def test_policy_shares_composite_three_tier(benchmark):
    policy = Policy.parse("group-user-size-fair")
    population = jobs(64)
    benchmark(policy.shares, population)


def test_scheduler_enqueue_dequeue(benchmark):
    policy = Policy.parse("job-fair")
    scheduler = StatisticalTokenScheduler(policy, np.random.default_rng(0))
    population = jobs(16)
    scheduler.on_jobs_changed(population, 0.0)
    requests = [Req(job_id=i % 16) for i in range(64)]

    def cycle():
        for request in requests:
            scheduler.enqueue(request, 0.0)
        for _ in range(len(requests)):
            scheduler.dequeue(0.0)

    benchmark(cycle)


def test_placement_assignment(benchmark):
    population = jobs(32)
    shares = Policy.parse("size-fair").shares(population)
    presence = {f"bb{s}": {j.job_id for j in population
                           if (j.job_id + s) % 3 != 0}
                for s in range(8)}
    benchmark(placement_shares, presence, shares)
