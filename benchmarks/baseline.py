"""Benchmark-regression baseline runner.

Executes the hot-path micro kernels plus one representative contended
system run and emits ``BENCH_<rev>.json`` with per-kernel throughput
(ops/sec), simulation event rates (events/sec), and wall-clock seconds.
``scripts/bench_compare.py`` diffs two of these files and fails on
regression — CI runs this in ``--quick`` mode as a smoke job.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py [--quick] [--out PATH]

The runner deliberately uses only APIs that exist since the seed
revision, so the identical file can be pointed at an older checkout to
produce a comparison baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from typing import Callable, Dict

import numpy as np

from repro.bb import Cluster, ClusterConfig, ServerConfig
from repro.core import JobInfo, Policy, StatisticalTokenScheduler, TokenAssignment
from repro.sim.engine import Engine
from repro.units import GB, MB


class _Req:
    __slots__ = ("job_id", "cost")

    def __init__(self, job_id: int):
        self.job_id = job_id
        self.cost = 1.0


def _jobs(n: int, users: int = 4, groups: int = 2):
    return [JobInfo(job_id=i, user=f"u{i % users}", group=f"g{i % groups}",
                    size=(i % 8) + 1) for i in range(n)]


def _time_kernel(fn: Callable[[], int], rounds: int) -> Dict[str, float]:
    """Run *fn* (returns ops done) *rounds* times; report best-round rate."""
    best = float("inf")
    total_wall = 0.0
    ops = 0
    for _ in range(rounds):
        t0 = time.perf_counter()
        ops = fn()
        dt = time.perf_counter() - t0
        total_wall += dt
        if dt < best:
            best = dt
    return {
        "wall_s": round(best, 6),
        "wall_mean_s": round(total_wall / rounds, 6),
        "ops": ops,
        "ops_per_s": round(ops / best, 1),
    }


# ---------------------------------------------------------------- kernels
def bench_scheduler_enqueue_dequeue() -> int:
    """The arbitration hot path: 16 jobs, 64-request enqueue/dequeue cycles."""
    policy = Policy.parse("job-fair")
    scheduler = StatisticalTokenScheduler(policy, np.random.default_rng(0))
    scheduler.on_jobs_changed(_jobs(16), 0.0)
    requests = [_Req(i % 16) for i in range(64)]
    cycles = 200
    for _ in range(cycles):
        for request in requests:
            scheduler.enqueue(request, 0.0)
        for _ in range(len(requests)):
            scheduler.dequeue(0.0)
    return cycles * 2 * len(requests)


def bench_token_draw() -> int:
    """Cumulative-boundary search over a 64-job assignment."""
    assignment = TokenAssignment({i: float(i + 1) for i in range(64)})
    us = np.random.default_rng(0).random(5000).tolist()
    reps = 10
    draw = assignment.draw
    for _ in range(reps):
        for u in us:
            draw(u)
    return reps * len(us)


def bench_policy_shares_composite() -> int:
    """Eq. 1 chain evaluation for a three-tier policy over 64 jobs."""
    policy = Policy.parse("group-user-size-fair")
    population = _jobs(64)
    reps = 300
    for _ in range(reps):
        policy.shares(population)
    return reps


def bench_engine_timeout_churn() -> int:
    """Raw DES kernel throughput: schedule/fire a storm of timeouts."""
    engine = Engine()
    n_procs, n_ticks = 50, 400

    def ticker():
        for _ in range(n_ticks):
            yield engine.timeout(0.001)

    for _ in range(n_procs):
        engine.process(ticker())
    engine.run()
    return n_procs * n_ticks


def _bench_system(contended: bool, n_writes: int) -> Dict[str, float]:
    """A representative 3-job system run on one 4-worker server.

    *contended*: every write targets the same byte range of one shared
    file (worst-case writer-vs-writer lock conflicts); otherwise each
    job writes its own region (lock-free data path).
    """
    cluster = Cluster(ClusterConfig(
        n_servers=1, policy="job-fair",
        server=ServerConfig(bandwidth=1 * GB, n_workers=4)))
    cluster.fs.makedirs("/fs/data")
    path = "/fs/data/shared"
    engine = cluster.engine

    def app(client, idx):
        yield from client.create(path)
        offset = 0 if contended else idx * 64 * MB
        for _ in range(n_writes):
            yield from client.write(path, offset, 4 * MB)

    apps = []
    for idx in range(3):
        client = cluster.add_client(
            JobInfo(job_id=idx + 1, user=f"u{idx}", size=1))
        apps.append(engine.process(app(client, idx)))

    def stop_when_done():
        yield engine.all_of(apps)
        engine.request_stop()

    engine.process(stop_when_done())
    t0 = time.perf_counter()
    cluster.run(until=3600.0)
    wall = time.perf_counter() - t0
    served = sum(s.served_requests for s in cluster.servers.values())
    events = engine._seq  # total events ever scheduled
    return {
        "wall_s": round(wall, 6),
        "ops": served,
        "ops_per_s": round(served / wall, 1),
        "events": events,
        "events_per_s": round(events / wall, 1),
        "sim_time_s": round(engine.now, 6),
    }


# ------------------------------------------------------------------ driver
def git_rev() -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, check=True).stdout.strip()
    except Exception:
        return "unknown"
    dirty = subprocess.run(
        ["git", "status", "--porcelain", "--untracked-files=no"],
        cwd=os.path.dirname(os.path.abspath(__file__)),
        capture_output=True, text=True).stdout.strip()
    return f"{rev}-dirty" if dirty else rev


def run_all(quick: bool) -> Dict[str, Dict[str, float]]:
    rounds = 3 if quick else 7
    writes = 60 if quick else 200
    results = {
        "scheduler_enqueue_dequeue":
            _time_kernel(bench_scheduler_enqueue_dequeue, rounds),
        "token_draw": _time_kernel(bench_token_draw, rounds),
        "policy_shares_composite":
            _time_kernel(bench_policy_shares_composite, rounds),
        "engine_timeout_churn":
            _time_kernel(bench_engine_timeout_churn, rounds),
        "system_contended_write": _bench_system(True, writes),
        "system_disjoint_write": _bench_system(False, writes),
    }
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer rounds / smaller system run (CI smoke)")
    parser.add_argument("--out", default=None,
                        help="output path (default BENCH_<rev>.json in cwd)")
    args = parser.parse_args(argv)

    rev = git_rev()
    results = run_all(args.quick)
    payload = {
        "rev": rev,
        "quick": args.quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "results": results,
    }
    out = args.out or f"BENCH_{rev}.json"
    with open(out, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    for name, r in results.items():
        rate = r.get("ops_per_s", 0.0)
        print(f"{name:32s} {rate:>14,.0f} ops/s   wall {r['wall_s']:.4f}s")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
