"""Compatibility shim: the benchmark runner lives in :mod:`repro.bench`.

Usage (identical to before)::

    PYTHONPATH=src python benchmarks/baseline.py [--quick] [--out PATH]

or, equivalently::

    PYTHONPATH=src python -m repro bench [--quick] [--out PATH]
"""

from __future__ import annotations

import sys

from repro.bench import git_rev, main, run_all  # noqa: F401  (re-exports)

if __name__ == "__main__":
    sys.exit(main())
