"""Fig. 13 — application time-to-solution: FIFO vs size-fair, relative
to exclusive access.

Paper rows: FIFO + background slows NAMD/WRF/BERT/SPECFEM3D by
60.6/45.3/3.8/3.0% and ResNet-50 (async) by 2.7x; size-fair cuts these
to 0.1/4.6/1.6/0.0% and 12.9%, each bounded near the background job's
node-count share; size-fair removes 59.1-99.8% of the FIFO-induced
slowdown. The synchronous-ResNet validation run (62.1% overhead vs
async; FIFO 2.0x; size-fair 1.1%) is included as a variant.
"""

from repro.harness import fig13_applications

APPS = ("namd", "wrf", "specfem3d", "resnet50", "bert")


def test_fig13_applications(once):
    out = once(fig13_applications, apps=APPS, seed=0,
               include_sync_resnet=True)
    print("\n" + out.report())
    for app in APPS:
        fifo_s = out.slowdown(app, "fifo")
        fair_s = out.slowdown(app, "sizefair")
        # size-fair always (far) better than FIFO under interference.
        assert fair_s < fifo_s, (app, fifo_s, fair_s)
    # Headline cases.
    assert out.slowdown("namd", "fifo") > 0.30      # paper: +60.6%
    assert out.slowdown("namd", "sizefair") < 0.05  # paper: +0.1%
    assert out.slowdown("wrf", "fifo") > 0.25       # paper: +45.3%
    assert out.slowdown("resnet50", "fifo") > 1.0   # paper: 2.7x
    # Async anomaly: size-fair ResNet may exceed the 5.9% node bound.
    assert out.slowdown("resnet50", "sizefair") < 0.35
    # Slowdown reduction for the I/O-sensitive apps (paper: 59.1-99.8%).
    for app in ("namd", "wrf", "resnet50"):
        assert out.slowdown_reduction(app) > 0.55, app
    # Sync-ResNet validation: FIFO still catastrophic, size-fair far less.
    sync = "resnet50-sync"
    assert out.slowdown(sync, "fifo") > out.slowdown(sync, "sizefair")
