"""Figs. 10-11 — the three-tier group-user-size-fair composite policy.

Paper rows: groups get 9.5 vs 11.2 GB/s (near-even after startup);
inside group 2 the three users get 3.8 / 3.7 / 3.7 GB/s; user 2's three
jobs split 1.1 / 1.6 / 1.1 GB/s (node ratio 2:3:2); aggregate 20.7 GB/s
(~1 GB/s under maximum).
"""

import pytest

from repro.harness import fig10_group_user_size


def test_fig10_group_user_size(once):
    out = once(fig10_group_user_size, scale=0.1, seed=0)
    print("\n" + out.report())
    g1, g2 = out.group_totals["group1"], out.group_totals["group2"]
    print(f"group totals: {g1 / 1e9:.2f} vs {g2 / 1e9:.2f} GB/s "
          f"(paper: 9.5 vs 11.2)")
    # Tier 1: groups near-even.
    assert g1 / g2 == pytest.approx(1.0, abs=0.35)
    # Tier 2: group 2's three users near-even.
    u2 = out.user_totals["user2"]
    u3 = out.user_totals["user3"]
    u4 = out.user_totals["user4"]
    assert max(u2, u3, u4) / min(u2, u3, u4) < 1.5
    # Tier 3: user 2's jobs proportional to 2:3:2.
    j4, j5, j6 = (out.job_medians[i] for i in (4, 5, 6))
    assert j5 / j4 == pytest.approx(1.5, rel=0.4)
    assert j6 / j4 == pytest.approx(1.0, abs=0.4)
    assert out.total > 17e9
